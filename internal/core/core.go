// Package core implements the paper's contribution: the Aug_k covering
// framework (§2.1, Claim 2.1), the weighted k-ECSS algorithm (§4), the
// weighted 2-ECSS algorithm (MST + weighted TAP, §3 / Theorem 1.1) and the
// unweighted 3-ECSS algorithm via cycle space sampling (§5 / Theorem 1.3).
//
// # Minimum-cut enumeration
//
// Every Aug_k level must cover every minimum cut of its current subgraph H
// (Definition 2.1). EnumerateMinCuts produces them as canonical vertex
// bipartitions: exact enumerators handle sizes 1 (bridges) and 2 (cut
// pairs); size >= 3 runs recursive Karger–Stein contraction — contract to
// floor(n/√2) supernodes (see ksTarget for why the analysis' ⌈1+n/√2⌉ is
// deliberately rounded down), recurse twice on the shared prefix, and at
// <= 6 supernodes enumerate every bipartition of the contracted graph
// exactly. A fixed minimum cut survives one such trial with probability
// Ω(1/log n), so Θ(log²n) trials enumerate all minimum cuts w.h.p., versus
// the Θ(n²·log n) flat contractions of EnumerateMinCutsReference (retained
// as the testing oracle).
//
// # Determinism of parallel trials
//
// Contraction trials may run on several goroutines
// (CutEnumOptions.Workers) and follow the contract internal/service
// established for sweeps: trial t draws from a private RNG seeded
// baseSeed XOR t (baseSeed is one Int63 from the caller's RNG), trial
// results merge in trial order, and the merged set is sorted canonically —
// so the output is byte-identical at any worker count and scheduling.
//
// # Arena ownership
//
// All trial scratch (per-level union-find, relabelling and contracted edge
// buffers, side-bitset buffers, the per-trial RNG and intern tables) lives
// in a cutArena recycled through a package sync.Pool. An arena is owned by
// exactly one goroutine at a time; materialised cut bitsets are carved
// from blocks that the arena detaches on reset, so cuts returned to
// callers keep sole ownership of their memory after the arena is recycled.
// Warm trials allocate only when they discover a never-before-seen
// bipartition.
//
// Cut identity is 64-bit FNV-1a hashed and resolved by intern tables that
// compare the underlying data on hash collision — inside trials over the
// sorted crossing-edge signature (O(λ) per probe; for a minimum cut the λ
// crossing edges determine the bipartition), across trial merges and the
// size-2 exact enumerator over the bipartition bitset. Aug's coverage
// bookkeeping then works on dense cut indices (covered bitmaps, candidate
// cut-index lists) — no string keys on any hot path.
//
// # Output-sensitive candidate scans
//
// Both covering loops avoid rescanning their candidate pools. Aug keeps a
// cut→candidate transpose of the candidate cut lists: each cut that flips
// to covered decrements the cached cover count of exactly the candidates
// crossing it, so the per-iteration Lines 1–2 selection reads one cached
// integer per candidate and total maintenance is O(Σ|Ce|) over the run.
// The 3-ECSS loop goes further, since its cover counts live in the
// cycle-space labeling rather than an explicit cut list: a
// cycles.CoverIndex maintains every unselected candidate's |Ce| under
// label updates (heavy-path Fenwick path sums plus a small same-label
// pair correction; see that type's docs), reporting exactly the
// candidates whose count may have changed, and an exponent-bucket
// structure (expBuckets) turns "max rounded cost-effectiveness + pool
// attaining it" into an O(pool + stale) pop — iterations touch candidates
// proportional to what changed, not to m. The pool a bucket pop yields is
// re-sorted to ascending edge ID, so RNG consumption and results are
// bit-identical to the legacy full scans (pinned by the equivalence
// corpus).
//
// ThreeECSSOptions.Rebalance adds the §5 mitigation for Θ(n)-height
// labeling trees: when the tree grows past 4·⌈log n⌉ and a BFS probe of
// H ∪ A shows at least a 2x height reduction, the engine is rebuilt on the
// current selection, charging the measured rebuild rounds and emitting a
// "rebalance" PhaseEvent.
//
//kecss:deterministic
package core
