// Package core implements the paper's contribution: the Aug_k covering
// framework (§2.1, Claim 2.1), the weighted k-ECSS algorithm (§4), the
// weighted 2-ECSS algorithm (MST + weighted TAP, §3 / Theorem 1.1) and the
// unweighted 3-ECSS algorithm via cycle space sampling (§5 / Theorem 1.3).
//
// # Minimum-cut enumeration
//
// Every Aug_k level must cover every minimum cut of its current subgraph H
// (Definition 2.1). EnumerateMinCuts produces them as canonical vertex
// bipartitions: exact enumerators handle sizes 1 (bridges) and 2 (cut
// pairs); size >= 3 runs recursive Karger–Stein contraction — contract to
// floor(n/√2) supernodes (see ksTarget for why the analysis' ⌈1+n/√2⌉ is
// deliberately rounded down), recurse twice on the shared prefix, and at
// <= 6 supernodes enumerate every bipartition of the contracted graph
// exactly. A fixed minimum cut survives one such trial with probability
// Ω(1/log n), so Θ(log²n) trials enumerate all minimum cuts w.h.p., versus
// the Θ(n²·log n) flat contractions of EnumerateMinCutsReference (retained
// as the testing oracle).
//
// # Determinism of parallel trials
//
// Contraction trials may run on several goroutines
// (CutEnumOptions.Workers) and follow the contract internal/service
// established for sweeps: trial t draws from a private RNG seeded
// baseSeed XOR t (baseSeed is one Int63 from the caller's RNG), trial
// results merge in trial order, and the merged set is sorted canonically —
// so the output is byte-identical at any worker count and scheduling.
//
// # Arena ownership
//
// All trial scratch (per-level union-find, relabelling and contracted edge
// buffers, side-bitset buffers, the per-trial RNG and intern tables) lives
// in a cutArena recycled through a package sync.Pool. An arena is owned by
// exactly one goroutine at a time; materialised cut bitsets are carved
// from blocks that the arena detaches on reset, so cuts returned to
// callers keep sole ownership of their memory after the arena is recycled.
// Warm trials allocate only when they discover a never-before-seen
// bipartition.
//
// Cut identity is 64-bit FNV-1a hashed and resolved by intern tables that
// compare the underlying data on hash collision — inside trials over the
// sorted crossing-edge signature (O(λ) per probe; for a minimum cut the λ
// crossing edges determine the bipartition), across trial merges and the
// size-2 exact enumerator over the bipartition bitset. Aug's coverage
// bookkeeping then works on dense cut indices (covered bitmaps, candidate
// cut-index lists) — no string keys on any hot path.
package core
