package core
