package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Cut is a minimum edge cut of the subgraph H, represented by the vertex
// bipartition it induces. A minimum cut of a connected graph separates it
// into exactly two connected sides, so a new edge covers the cut iff it
// crosses the bipartition (Definition 2.1 specialises to this for minimum
// cuts).
type Cut struct {
	side []uint64 // bitset over vertices; canonical: vertex 0's side is 0
}

func newCut(n int, inSide func(v int) bool) Cut {
	c := Cut{side: make([]uint64, cutWords(n))}
	for v := 0; v < n; v++ {
		if inSide(v) {
			c.side[v/64] |= 1 << uint(v%64)
		}
	}
	// Canonical orientation: complement if vertex 0 is inside.
	if c.side[0]&1 != 0 {
		for i := range c.side {
			c.side[i] = ^c.side[i]
		}
		// Clear padding bits beyond n.
		if rem := uint(n % 64); rem != 0 {
			c.side[len(c.side)-1] &= (1 << rem) - 1
		}
	}
	return c
}

// cutWords returns the number of 64-bit words a side bitset over n vertices
// occupies.
func cutWords(n int) int { return (n + 63) / 64 }

// Key returns a string identifying the bipartition. It survives as the
// oracle-friendly identity used by tests and the reference enumerator; the
// hot paths intern cuts through cutInterner's 64-bit hash table instead and
// never materialise strings.
func (c Cut) Key() string {
	b := make([]byte, 0, len(c.side)*8)
	for _, w := range c.side {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>uint(s)))
		}
	}
	return string(b)
}

// Crosses reports whether the edge {u, v} crosses the bipartition.
func (c Cut) Crosses(u, v int) bool {
	return c.contains(u) != c.contains(v)
}

func (c Cut) contains(v int) bool {
	return c.side[v/64]&(1<<uint(v%64)) != 0
}

// hashWords is word-at-a-time FNV-1a over a side bitset.
func hashWords(ws []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range ws {
		h = (h ^ w) * prime64
	}
	return h
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cutLess orders canonical bipartitions by their bitset words (word 0
// first). Any fixed total order works; this one needs no string
// materialisation.
func cutLess(a, b Cut) bool {
	for i := range a.side {
		if a.side[i] != b.side[i] {
			return a.side[i] < b.side[i]
		}
	}
	return false
}

func sortCuts(cuts []Cut) {
	sort.Slice(cuts, func(i, j int) bool { return cutLess(cuts[i], cuts[j]) })
}

// cutStore carves materialised cut bitsets out of large blocks (few
// allocations, good locality). Ownership rule: reset detaches the blocks,
// so cuts handed out before a reset keep sole ownership of their memory
// even after the store's owner (an arena or interner) is recycled.
type cutStore struct {
	words int
	block []uint64
}

// cutBlockWords sizes the backing blocks interned bitsets are carved from.
const cutBlockWords = 4096

func (cs *cutStore) reset(n int) {
	cs.words = cutWords(n)
	cs.block = nil
}

// alloc returns a Cut owning a copy of side, carved from the current block.
func (cs *cutStore) alloc(side []uint64) Cut {
	if len(cs.block) < cs.words {
		bw := cutBlockWords
		if bw < cs.words {
			bw = cs.words
		}
		cs.block = make([]uint64, bw)
	}
	stored := cs.block[:cs.words:cs.words]
	cs.block = cs.block[cs.words:]
	copy(stored, side)
	return Cut{side: stored}
}

// cutInterner assigns dense indices to canonical bipartitions: a 64-bit
// FNV-1a hash keys the table and the full bitset is compared on collision,
// so no string keys are ever built. Interned bitsets live in a cutStore,
// whose detach-on-reset rule keeps handed-out cuts safe across reuse.
type cutInterner struct {
	table map[uint64][]int32
	cuts  []Cut
	store cutStore
}

func (it *cutInterner) reset(n int) {
	if it.table == nil {
		it.table = make(map[uint64][]int32)
	} else {
		clear(it.table)
	}
	it.cuts = it.cuts[:0]
	it.store.reset(n)
}

// lookup returns the index of the interned cut equal to side, or -1.
func (it *cutInterner) lookup(h uint64, side []uint64) int32 {
	for _, idx := range it.table[h] {
		if wordsEqual(it.cuts[idx].side, side) {
			return idx
		}
	}
	return -1
}

// add interns the canonical side bitset, copying it into interner-owned
// block storage when unseen. It returns the interned Cut and whether it was
// new.
func (it *cutInterner) add(side []uint64) (Cut, bool) {
	h := hashWords(side)
	if idx := it.lookup(h, side); idx >= 0 {
		return it.cuts[idx], false
	}
	return it.insert(h, it.store.alloc(side)), true
}

// addCut interns an already-materialised Cut without copying its bitset.
// Used when merging per-trial results whose cuts already own their memory.
func (it *cutInterner) addCut(c Cut) bool {
	h := hashWords(c.side)
	if it.lookup(h, c.side) >= 0 {
		return false
	}
	it.insert(h, c)
	return true
}

func (it *cutInterner) insert(h uint64, c Cut) Cut {
	it.table[h] = append(it.table[h], int32(len(it.cuts)))
	it.cuts = append(it.cuts, c)
	return c
}

// CutEnumOptions tunes EnumerateMinCutsOpts. The zero value is the default:
// sequential trials, the default Karger–Stein repetition count, and λ(h)
// verified by a capped max-flow pass.
type CutEnumOptions struct {
	// Workers spreads the size >= 3 contraction trials over this many
	// goroutines (via service.Do). 0 or 1 keeps them on the calling
	// goroutine. Results are byte-identical at any worker count: trial t
	// always draws from its own RNG seeded baseSeed XOR t and trial results
	// merge in trial order. The exact enumerators for sizes 1–2 ignore this.
	Workers int
	// TrialFactor multiplies the default Θ(log²n) Karger–Stein repetition
	// count (0 or 1 = default). The default is chosen for w.h.p.
	// completeness; raising it buys a lower miss probability with CPU.
	TrialFactor int
	// KnownConnectivity > 0 is the caller's promise that λ(h) equals this
	// value, letting the enumerator skip its own capped max-flow
	// verification (an Aug level has just computed the connectivity of the
	// subgraph it augments). A cheap min-degree assertion still guards
	// against contradictory promises.
	KnownConnectivity int
	// LeafRecount switches the size >= 3 base-case enumeration back to the
	// per-mask crossing recount instead of the gray-code sweep. The two
	// visit the same bipartitions and produce identical output (pinned by
	// the equivalence tests); the recount survives as the oracle.
	LeafRecount bool
	// MaxTrials caps the Karger–Stein repetition count (after TrialFactor),
	// for tests that compare leaf strategies on graphs too large for the
	// full w.h.p. schedule. 0 means no cap. Capped runs may miss cuts and
	// must not be used for solving.
	MaxTrials int
	// Phase, if set, receives "ks-sweep" and "ks-materialise" PhaseEvents
	// from the size >= 3 contraction enumeration. Nil costs nothing.
	Phase PhaseObserver
}

// EnumerateMinCuts returns every cut of size exactly `size` of the connected
// graph h, where size must equal h's edge connectivity (the cuts the Aug_k
// step must cover). It dispatches to exact enumerators for sizes 1 and 2
// (bridges, cut pairs) and to recursive Karger–Stein contraction for
// size >= 3. rng drives the contraction and is only used for size >= 3.
func EnumerateMinCuts(h *graph.Graph, size int, rng *rand.Rand) ([]Cut, error) {
	return EnumerateMinCutsOpts(h, size, rng, CutEnumOptions{})
}

// EnumerateMinCutsOpts is EnumerateMinCuts with explicit enumeration
// options; see CutEnumOptions for the determinism contract.
func EnumerateMinCutsOpts(h *graph.Graph, size int, rng *rand.Rand, opts CutEnumOptions) ([]Cut, error) {
	if !h.Connected() {
		return nil, fmt.Errorf("core: cut enumeration needs a connected graph")
	}
	switch {
	case size <= 0:
		return nil, fmt.Errorf("core: cut size %d out of range", size)
	case size == 1:
		return cutsFromBridges(h), nil
	case size == 2:
		return cutsFromCutPairs(h)
	default:
		return cutsByContraction(h, size, rng, opts)
	}
}

// componentsSkipping labels the connected components of h with up to two
// edges (skip1, skip2; pass -1 for none) ignored, writing component indices
// into comp (length h.N()) and using queue (capacity >= h.N()) as BFS
// scratch. It returns the component count. Replaces the per-exclusion
// SubgraphWithout + Components pattern: no subgraph or exclusion map is
// built, and the caller's scratch is reused across scans.
func componentsSkipping(h *graph.Graph, comp, queue []int, skip1, skip2 int) int {
	for v := range comp {
		comp[v] = -1
	}
	count := 0
	for s := 0; s < h.N(); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, a := range h.Adj(v) {
				if a.Edge == skip1 || a.Edge == skip2 || comp[a.To] != -1 {
					continue
				}
				comp[a.To] = count
				queue = append(queue, a.To)
			}
		}
		count++
	}
	return count
}

// cutsFromBridges converts each bridge into its bipartition with one
// component scan per bridge over shared scratch.
func cutsFromBridges(h *graph.Graph) []Cut {
	bridges := h.Bridges()
	if len(bridges) == 0 {
		return nil
	}
	n := h.N()
	comp := make([]int, n)
	queue := make([]int, 0, n)
	out := make([]Cut, 0, len(bridges))
	for _, b := range bridges {
		componentsSkipping(h, comp, queue, b, -1)
		e := h.Edge(b)
		side := comp[e.U]
		out = append(out, newCut(n, func(v int) bool { return comp[v] == side }))
	}
	return out
}

// cutsFromCutPairs converts each cut pair into its bipartition, deduping
// pairs that induce the same bipartition through the intern table.
func cutsFromCutPairs(h *graph.Graph) ([]Cut, error) {
	pairs := h.CutPairs()
	if len(pairs) == 0 {
		return nil, nil
	}
	n := h.N()
	comp := make([]int, n)
	queue := make([]int, 0, n)
	side := make([]uint64, cutWords(n))
	var itn cutInterner
	itn.reset(n)
	out := make([]Cut, 0, len(pairs))
	for _, p := range pairs {
		if count := componentsSkipping(h, comp, queue, p.A, p.B); count != 2 {
			// A minimum cut always splits into exactly two components.
			return nil, fmt.Errorf("core: cut pair %v split graph into %d components", p, count)
		}
		// Vertex 0 seeds the first BFS, so comp[0] == 0 and the side
		// {v : comp[v] == 1} is already canonically oriented.
		for i := range side {
			side[i] = 0
		}
		for v, cv := range comp {
			if cv == 1 {
				side[v/64] |= 1 << uint(v%64)
			}
		}
		if c, isNew := itn.add(side); isNew {
			out = append(out, c)
		}
	}
	return out, nil
}

// EnumerateMinCutsReference is the pre-Karger–Stein enumerator, retained as
// the oracle for the equivalence corpus and for before/after benchmarking.
// Semantics match EnumerateMinCuts; only the size >= 3 strategy differs:
// 3n²·log n independent single-level contractions, each paying an O(m)
// permutation allocation, a fresh union-find, and a string-keyed dedup.
func EnumerateMinCutsReference(h *graph.Graph, size int, rng *rand.Rand) ([]Cut, error) {
	if !h.Connected() {
		return nil, fmt.Errorf("core: cut enumeration needs a connected graph")
	}
	switch {
	case size <= 0:
		return nil, fmt.Errorf("core: cut size %d out of range", size)
	case size == 1:
		return cutsFromBridges(h), nil
	case size == 2:
		return cutsFromCutPairs(h)
	default:
		return cutsByFlatContraction(h, size, rng)
	}
}

// cutsByFlatContraction enumerates minimum cuts of the given size by
// repeated single-level Karger contraction. Each minimum cut survives a
// contraction run with probability >= 2/(n(n-1)), so O(n²·log n) runs find
// all of them w.h.p.
func cutsByFlatContraction(h *graph.Graph, size int, rng *rand.Rand) ([]Cut, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: contraction enumeration requires rng")
	}
	lambda := h.EdgeConnectivityUpTo(size + 1)
	if lambda > size {
		return nil, nil // no cuts of this size: already (size+1)-connected
	}
	if lambda < size {
		return nil, fmt.Errorf("core: graph has connectivity %d < requested cut size %d", lambda, size)
	}
	n := h.N()
	trials := 3 * n * n * (bits.Len(uint(n)) + 1)
	if trials < 200 {
		trials = 200
	}
	seen := make(map[string]bool)
	var out []Cut
	edges := h.Edges()
	for trial := 0; trial < trials; trial++ {
		uf := graph.NewUnionFind(n)
		perm := rng.Perm(len(edges))
		remaining := n
		for _, ei := range perm {
			if remaining <= 2 {
				break
			}
			e := edges[ei]
			if uf.Union(e.U, e.V) {
				remaining--
			}
		}
		if remaining != 2 {
			continue
		}
		// Count crossing edges.
		r0 := uf.Find(0)
		crossing := 0
		for _, e := range edges {
			if (uf.Find(e.U) == r0) != (uf.Find(e.V) == r0) {
				crossing++
			}
		}
		if crossing != size {
			continue
		}
		c := newCut(n, func(v int) bool { return uf.Find(v) != r0 })
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}
