// Package core implements the paper's contribution: the Aug_k covering
// framework (§2.1, Claim 2.1), the weighted k-ECSS algorithm (§4), the
// weighted 2-ECSS algorithm (MST + weighted TAP, §3 / Theorem 1.1) and the
// unweighted 3-ECSS algorithm via cycle space sampling (§5 / Theorem 1.3).
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Cut is a minimum edge cut of the subgraph H, represented by the vertex
// bipartition it induces. A minimum cut of a connected graph separates it
// into exactly two connected sides, so a new edge covers the cut iff it
// crosses the bipartition (Definition 2.1 specialises to this for minimum
// cuts).
type Cut struct {
	side []uint64 // bitset over vertices; canonical: vertex 0's side is 0
}

func newCut(n int, inSide func(v int) bool) Cut {
	c := Cut{side: make([]uint64, (n+63)/64)}
	for v := 0; v < n; v++ {
		if inSide(v) {
			c.side[v/64] |= 1 << uint(v%64)
		}
	}
	// Canonical orientation: complement if vertex 0 is inside.
	if c.side[0]&1 != 0 {
		for i := range c.side {
			c.side[i] = ^c.side[i]
		}
		// Clear padding bits beyond n.
		if rem := uint(n % 64); rem != 0 {
			c.side[len(c.side)-1] &= (1 << rem) - 1
		}
	}
	return c
}

// Key returns a map key identifying the bipartition.
func (c Cut) Key() string {
	b := make([]byte, 0, len(c.side)*8)
	for _, w := range c.side {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>uint(s)))
		}
	}
	return string(b)
}

// Crosses reports whether the edge {u, v} crosses the bipartition.
func (c Cut) Crosses(u, v int) bool {
	return c.contains(u) != c.contains(v)
}

func (c Cut) contains(v int) bool {
	return c.side[v/64]&(1<<uint(v%64)) != 0
}

// EnumerateMinCuts returns every cut of size exactly `size` of the connected
// graph h, where size must equal h's edge connectivity (the cuts the Aug_k
// step must cover). It dispatches to exact enumerators for sizes 1 and 2
// (bridges, cut pairs) and to repeated Karger contraction with verification
// for size >= 3. rng drives the contraction and is only used for size >= 3.
func EnumerateMinCuts(h *graph.Graph, size int, rng *rand.Rand) ([]Cut, error) {
	if !h.Connected() {
		return nil, fmt.Errorf("core: cut enumeration needs a connected graph")
	}
	switch {
	case size <= 0:
		return nil, fmt.Errorf("core: cut size %d out of range", size)
	case size == 1:
		return cutsFromBridges(h), nil
	case size == 2:
		return cutsFromCutPairs(h)
	default:
		return cutsByContraction(h, size, rng)
	}
}

// cutsFromBridges converts each bridge into its bipartition.
func cutsFromBridges(h *graph.Graph) []Cut {
	var out []Cut
	for _, b := range h.Bridges() {
		rem, _ := h.SubgraphWithout(map[int]bool{b: true})
		comp, _ := rem.Components()
		e := h.Edge(b)
		side := comp[e.U]
		out = append(out, newCut(h.N(), func(v int) bool { return comp[v] == side }))
	}
	return out
}

// cutsFromCutPairs converts each cut pair into its bipartition.
func cutsFromCutPairs(h *graph.Graph) ([]Cut, error) {
	pairs := h.CutPairs()
	out := make([]Cut, 0, len(pairs))
	seen := make(map[string]bool, len(pairs))
	for _, p := range pairs {
		rem, _ := h.SubgraphWithout(map[int]bool{p.A: true, p.B: true})
		comp, count := rem.Components()
		if count != 2 {
			// A minimum cut always splits into exactly two components.
			return nil, fmt.Errorf("core: cut pair %v split graph into %d components", p, count)
		}
		e := h.Edge(p.A)
		side := comp[e.U]
		c := newCut(h.N(), func(v int) bool { return comp[v] == side })
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// cutsByContraction enumerates minimum cuts of the given size by repeated
// Karger contraction. Each minimum cut survives a contraction run with
// probability >= 2/(n(n-1)), so O(n²·log n) runs find all of them w.h.p.;
// the caller's final connectivity verification catches the (negligible)
// failure case. Returns an error if h's connectivity is not `size` (then
// these would not be minimum cuts and the survival bound would not apply).
func cutsByContraction(h *graph.Graph, size int, rng *rand.Rand) ([]Cut, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: contraction enumeration requires rng")
	}
	lambda := h.EdgeConnectivityUpTo(size + 1)
	if lambda > size {
		return nil, nil // no cuts of this size: already (size+1)-connected
	}
	if lambda < size {
		return nil, fmt.Errorf("core: graph has connectivity %d < requested cut size %d", lambda, size)
	}
	n := h.N()
	trials := 3 * n * n * (bitLen(n) + 1)
	if trials < 200 {
		trials = 200
	}
	seen := make(map[string]bool)
	var out []Cut
	edges := h.Edges()
	for trial := 0; trial < trials; trial++ {
		uf := graph.NewUnionFind(n)
		perm := rng.Perm(len(edges))
		remaining := n
		for _, ei := range perm {
			if remaining <= 2 {
				break
			}
			e := edges[ei]
			if uf.Union(e.U, e.V) {
				remaining--
			}
		}
		if remaining != 2 {
			continue
		}
		// Count crossing edges.
		r0 := uf.Find(0)
		crossing := 0
		for _, e := range edges {
			if (uf.Find(e.U) == r0) != (uf.Find(e.V) == r0) {
				crossing++
			}
		}
		if crossing != size {
			continue
		}
		c := newCut(n, func(v int) bool { return uf.Find(v) != r0 })
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

func bitLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
