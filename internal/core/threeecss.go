package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/baselines"
	"repro/internal/congest"
	"repro/internal/cycles"
	"repro/internal/graph"
	"repro/internal/rounds"
	"repro/internal/tap"
	"repro/internal/tree"
)

// ThreeECSSOptions configures the unweighted 3-ECSS solver (§5, Theorem 1.3).
type ThreeECSSOptions struct {
	// Rng drives label sampling and candidate activation. Required.
	Rng *rand.Rand
	// LabelBits is the circulation width b (default 48; the paper uses
	// Θ(log n), and 48 makes Property 5.1 failures negligible at any n this
	// simulator reaches).
	LabelBits int
	// PhaseLen is the activation-schedule constant (see AugOptions.PhaseLen).
	PhaseLen int
	// Executor selects the simulator executor for the label scans.
	Executor congest.Executor
	// Arena supplies reusable simulation buffers for the per-iteration label
	// scans. Defaults to a fresh arena per solve.
	Arena *congest.NetworkArena
	// MaxIterations caps the loop (0 = generous O(log³ n) default).
	MaxIterations int
	// SkipValidation skips the up-front 3-edge-connectivity check of the
	// input graph (see KECSSOptions.SkipValidation).
	SkipValidation bool
	// CutEnum tunes the exact min-cut enumeration used by the correction
	// path that runs if the w.h.p. label-based termination missed a cut
	// pair (see CutEnumOptions). The size-2 enumeration is exact, so only
	// future size >= 3 uses of the knob consume its trial settings.
	CutEnum CutEnumOptions
}

// ThreeECSSResult is the outcome of the 3-ECSS computation.
type ThreeECSSResult struct {
	// Edges is the 3-edge-connected spanning subgraph (H ∪ A).
	Edges []int
	// Size is the number of edges (the unweighted objective).
	Size int
	// Weight is the total edge weight (the §5.4 weighted objective;
	// equals Size on unit-weight graphs).
	Weight int64
	// BaseSize is the size of the 2-edge-connected base subgraph H built by
	// the O(D)-round 2-approximation of [1].
	BaseSize int
	// Iterations is the number of sampling iterations.
	Iterations int
	// Rounds combines measured label-scan rounds with the charged O(D)
	// aggregations (Theorem 1.3: O(D·log³n)).
	Rounds int64
	// LabelRoundsMeasured is the simulator-measured part of Rounds.
	LabelRoundsMeasured int64
	// CorrectionEdges counts edges added by the exact fallback that runs if
	// the w.h.p. label-based termination missed a cut pair (expected 0).
	CorrectionEdges int
}

// Solve3ECSSUnweighted computes a small 3-edge-connected spanning subgraph
// of g per §5: build a 2-edge-connected base H with the O(D)-round
// 2-approximation of [1], then cover all cut pairs of H using cycle space
// sampling to evaluate cost-effectiveness in O(D) rounds per iteration.
// Edge weights of g are ignored (the unweighted objective is edge count).
func Solve3ECSSUnweighted(g *graph.Graph, opts ThreeECSSOptions) (*ThreeECSSResult, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: ThreeECSSOptions.Rng is required")
	}
	if !opts.SkipValidation && !g.IsKEdgeConnected(3) {
		return nil, fmt.Errorf("core: input graph is not 3-edge-connected")
	}
	var acc rounds.Accountant
	// Base subgraph H: BFS tree + O(D)-round augmentation [1].
	h, _, err := baselines.TwoECSSUnweighted2Approx(g, 0)
	if err != nil {
		return nil, fmt.Errorf("core: base 2-ECSS: %w", err)
	}
	acc.Charge("base 2-ECSS [1]", 2*int64(g.DiameterEstimate()))
	return solve3ECSS(g, h, false, opts, &acc)
}

// Solve3ECSSWeighted is the §5.4 weighted variant: the base H is the §3
// weighted 2-ECSS (MST + TAP) instead of the BFS-tree 2-approximation, and
// candidate cost-effectiveness is |Ce|/w(e). Per-iteration cost is governed
// by the height of H∪A's spanning tree (Θ(hMST) in the worst case, which is
// why the paper calls the weighted variant slower: O(n·log³n) total).
func Solve3ECSSWeighted(g *graph.Graph, opts ThreeECSSOptions) (*ThreeECSSResult, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: ThreeECSSOptions.Rng is required")
	}
	if !opts.SkipValidation && !g.IsKEdgeConnected(3) {
		return nil, fmt.Errorf("core: input graph is not 3-edge-connected")
	}
	var acc rounds.Accountant
	base, err := Solve2ECSS(g, TwoECSSOptions{Rng: opts.Rng})
	if err != nil {
		return nil, fmt.Errorf("core: weighted base 2-ECSS: %w", err)
	}
	acc.Charge("base weighted 2-ECSS (Thm 1.1)", base.Rounds)
	return solve3ECSS(g, base.Edges, true, opts, &acc)
}

// solve3ECSS runs the §5 augmentation loop from the 2-edge-connected base h
// to 3-edge-connectivity. weighted selects the §5.4 cost-effectiveness
// |Ce|/w(e); otherwise ρ(e)=|Ce|.
func solve3ECSS(g *graph.Graph, h []int, weighted bool, opts ThreeECSSOptions, acc *rounds.Accountant) (*ThreeECSSResult, error) {
	bits := opts.LabelBits
	if bits == 0 {
		bits = 48
	}
	n := g.N()
	logn := int(rounds.Log2Ceil(n)) + 1
	phaseLen := opts.PhaseLen
	if phaseLen == 0 {
		phaseLen = 1
	}
	maxIters := opts.MaxIterations
	if maxIters == 0 {
		maxIters = 20*logn*logn*logn + 200
	}
	var simOpts []congest.Option
	if opts.Executor != nil {
		simOpts = append(simOpts, congest.WithExecutor(opts.Executor))
	}
	// The augmentation loop labels H ∪ A once per iteration — dozens of
	// short-lived networks over same-shaped subgraphs, the arena's best case.
	simOpts = congest.WithDefaultArena(simOpts)
	if opts.Arena != nil {
		simOpts = append(simOpts, congest.WithArena(opts.Arena))
	}
	d := int64(g.DiameterEstimate())
	res := &ThreeECSSResult{BaseSize: len(h)}

	current := make(map[int]bool, len(h))
	for _, id := range h {
		current[id] = true
	}
	sel := append([]int(nil), h...)

	mExp := 0
	for v := 1; v < g.M(); v <<= 1 {
		mExp++
	}
	pExp := mExp
	prevBest := 1 << 30
	itersAtThisP := 0

	for {
		if res.Iterations >= maxIters {
			return nil, fmt.Errorf("core: 3-ECSS exceeded %d iterations", maxIters)
		}
		// Label the current subgraph H ∪ A (genuinely distributed, measured).
		labeling, labelRounds, err := labelSubgraph(g, sel, bits, opts.Rng, simOpts)
		if err != nil {
			return nil, err
		}
		res.LabelRoundsMeasured += labelRounds
		acc.Charge("label scans (measured)", labelRounds)
		if labeling.ThreeEdgeConnectedWith() {
			break // Claim 5.10 termination test
		}
		res.Iterations++

		// Lines 1–2: cost-effectiveness via Claim 5.8 (unit weights:
		// ρ(e) = |Ce|), candidates at the maximum rounded value.
		type cand struct {
			id int
			ce int64
		}
		const infExp = 1 << 20
		best := -(1 << 30)
		var pool []cand
		for _, e := range g.Edges() {
			if current[e.ID] {
				continue
			}
			ce := labeling.CoverCount(e.U, e.V)
			if ce == 0 {
				continue
			}
			exp := infExp // weight-0 edges have infinite cost-effectiveness
			switch {
			case !weighted:
				exp = tap.RoundedExp(ce, 1)
			case e.W > 0:
				exp = tap.RoundedExp(ce, e.W)
			}
			if exp > best {
				best = exp
				pool = pool[:0]
			}
			if exp == best {
				pool = append(pool, cand{id: e.ID, ce: ce})
			}
		}
		acc.Charge("cost-effectiveness aggregation", 2*d)
		if len(pool) == 0 {
			// Labels say not 3-edge-connected but no candidate covers
			// anything: fall through to the exact correction below.
			break
		}
		if best < prevBest {
			pExp = mExp
			itersAtThisP = 0
		}
		prevBest = best

		// Line 3: every active candidate joins the augmentation directly
		// (no MST filter in the unweighted §5 variant).
		for _, c := range pool {
			if pExp == 0 || opts.Rng.Int63n(1<<uint(pExp)) == 0 {
				current[c.id] = true
				sel = append(sel, c.id)
			}
		}
		itersAtThisP++
		if itersAtThisP >= phaseLen*logn && pExp > 0 {
			pExp--
			itersAtThisP = 0
		}
	}

	// Exact verification; the label-based termination is w.h.p. only, so on
	// the (negligible-probability) miss, cover the remaining cut pairs
	// exactly.
	for {
		sub, _ := g.SubgraphOf(sel)
		if sub.IsKEdgeConnected(3) {
			break
		}
		added, err := coverOneCutPairExactly(g, current, &sel, opts.CutEnum)
		if err != nil {
			return nil, err
		}
		res.CorrectionEdges += added
	}

	sort.Ints(sel)
	res.Edges = sel
	res.Size = len(sel)
	res.Weight = g.WeightOf(sel)
	res.Rounds = acc.Total()
	return res, nil
}

// labelSubgraph computes cycle-space labels of the subgraph of g given by
// edge IDs sel, over a BFS tree of that subgraph, and returns a labeling
// translated so that CoverCount can be queried with g's vertex IDs.
func labelSubgraph(g *graph.Graph, sel []int, bits int, rng *rand.Rand, simOpts []congest.Option) (*cycles.Labeling, int64, error) {
	sub, _ := g.SubgraphOf(sel)
	tr, err := tree.FromBFS(sub.BFS(0))
	if err != nil {
		return nil, 0, fmt.Errorf("core: BFS tree of H∪A: %w", err)
	}
	l, err := cycles.ComputeLabels(sub, tr, bits, rng, simOpts...)
	if err != nil {
		return nil, 0, fmt.Errorf("core: labeling H∪A: %w", err)
	}
	return l, int64(l.Metrics.Rounds), nil
}

// coverOneCutPairExactly enumerates the remaining size-2 minimum cuts of
// the selected subgraph exactly (the base H keeps it 2-edge-connected, so a
// not-yet-3-connected selection has λ = 2) and adds the smallest-ID edge of
// g crossing the first one. Returns the number of edges added (always 1 on
// success).
func coverOneCutPairExactly(g *graph.Graph, current map[int]bool, sel *[]int, enumOpts CutEnumOptions) (int, error) {
	sub, _ := g.SubgraphOf(*sel)
	cuts, err := EnumerateMinCutsOpts(sub, 2, nil, enumOpts)
	if err != nil {
		return 0, fmt.Errorf("core: enumerating remaining cut pairs: %w", err)
	}
	if len(cuts) == 0 {
		// 2-edge-connected check must have failed for another reason.
		return 0, fmt.Errorf("core: subgraph not 3-edge-connected but has no cut pairs")
	}
	c := cuts[0]
	for _, e := range g.Edges() {
		if current[e.ID] || !c.Crosses(e.U, e.V) {
			continue
		}
		current[e.ID] = true
		*sel = append(*sel, e.ID)
		return 1, nil
	}
	return 0, fmt.Errorf("core: no edge of G covers a remaining cut pair (G not 3-edge-connected?)")
}
