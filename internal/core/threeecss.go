package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/baselines"
	"repro/internal/congest"
	"repro/internal/cycles"
	"repro/internal/graph"
	"repro/internal/rounds"
	"repro/internal/tap"
)

// ThreeECSSOptions configures the unweighted 3-ECSS solver (§5, Theorem 1.3).
// The option value (and the arenas it may carry) lives for one Solve call
// on the caller's goroutine.
//
//kecss:arena-owner
type ThreeECSSOptions struct {
	// Rng drives label sampling and candidate activation. Required.
	Rng *rand.Rand
	// LabelBits is the circulation width b (default 48; the paper uses
	// Θ(log n), and 48 makes Property 5.1 failures negligible at any n this
	// simulator reaches). Labels persist across iterations in the
	// incremental engine, so a narrow width inflates only the output size
	// (spurious collisions keep the loop augmenting), never correctness —
	// collisions are one-sided and the final subgraph is verified exactly.
	LabelBits int
	// PhaseLen is the activation-schedule constant (see AugOptions.PhaseLen).
	PhaseLen int
	// Executor selects the simulator executor for the label scans.
	Executor congest.Executor
	// Arena supplies reusable simulation buffers for the label scans.
	// Defaults to a fresh arena per solve.
	Arena *congest.NetworkArena
	// LabelArena supplies reusable scratch for the incremental labeling
	// engine (cycles.Arena ownership rules apply: one live engine at a
	// time, one arena per goroutine). Defaults to unpooled scratch.
	LabelArena *cycles.Arena
	// ReferenceLabeling re-runs the full distributed label scan over H ∪ A
	// every iteration (the retained from-scratch path,
	// cycles.Incremental.RelabelScan) instead of applying the O(|added|·
	// height) incremental XOR updates. Results are identical — the
	// equivalence corpus pins this — only the round accounting and the
	// wall-clock differ. Used by tests and ablations.
	ReferenceLabeling bool
	// MaxIterations caps the loop (0 = generous O(log³ n) default).
	MaxIterations int
	// Rebalance enables the §5 tree rebalancing: when the labeling tree of
	// H ∪ A is tall (ring-like bases drive it to Θ(n)) and a BFS of G
	// restricted to the current H ∪ A would at least halve it, the engine
	// is rebuilt over that BFS tree — capping the per-iteration label-
	// update height at O(D) once the augmentation has added chords. The
	// rebuild re-runs the measured distributed base scan (charged, and
	// reported as a "rebalance" PhaseEvent) and resamples the non-tree
	// labels from Rng, so rebalanced runs are deterministic but follow a
	// different random trajectory than unrebalanced ones. Ignored under
	// ReferenceLabeling (the oracle path keeps its fixed tree).
	Rebalance bool
	// SkipValidation skips the up-front 3-edge-connectivity check of the
	// input graph (see KECSSOptions.SkipValidation).
	SkipValidation bool
	// CutEnum tunes the exact min-cut enumeration used by the correction
	// path that runs if the w.h.p. label-based termination missed a cut
	// pair (see CutEnumOptions). The size-2 enumeration is exact, so only
	// future size >= 3 uses of the knob consume its trial settings.
	CutEnum CutEnumOptions
	// Phase, if set, receives a PhaseEvent per completed phase (validate,
	// base, base-label, augment, correction). Nil costs nothing.
	Phase PhaseObserver
}

// ThreeECSSResult is the outcome of the 3-ECSS computation.
type ThreeECSSResult struct {
	// Edges is the 3-edge-connected spanning subgraph (H ∪ A).
	Edges []int
	// Size is the number of edges (the unweighted objective).
	Size int
	// Weight is the total edge weight (the §5.4 weighted objective;
	// equals Size on unit-weight graphs).
	Weight int64
	// BaseSize is the size of the 2-edge-connected base subgraph H built by
	// the O(D)-round 2-approximation of [1].
	BaseSize int
	// Iterations is the number of sampling iterations that aggregated
	// cost-effectiveness and ran the activation lottery. An iteration whose
	// candidate pool is empty falls through to the exact correction without
	// being counted (its aggregation result is discarded).
	Iterations int
	// Rounds combines the measured label-scan rounds with the charged
	// per-iteration costs: the 2D cost-effectiveness aggregations, the
	// O(height + |added|) incremental label dissemination (absent under
	// ReferenceLabeling, where every scan is measured instead), and — on
	// the rare empty-pool exit — the one discarded final aggregation
	// (Theorem 1.3: O(D·log³n)).
	Rounds int64
	// LabelRoundsMeasured is the simulator-measured part of Rounds: the
	// initial base label scan, plus every per-iteration rescan when
	// ReferenceLabeling is set. Incremental label updates are charged
	// analytically (O(height + |added|) per iteration) and therefore count
	// toward Rounds but not toward this field.
	LabelRoundsMeasured int64
	// CorrectionEdges counts edges added by the exact fallback that runs if
	// the w.h.p. label-based termination missed a cut pair (expected 0).
	CorrectionEdges int
}

// Solve3ECSSUnweighted computes a small 3-edge-connected spanning subgraph
// of g per §5: build a 2-edge-connected base H with the O(D)-round
// 2-approximation of [1], then cover all cut pairs of H using cycle space
// sampling to evaluate cost-effectiveness in O(D) rounds per iteration.
// Edge weights of g are ignored (the unweighted objective is edge count).
func Solve3ECSSUnweighted(g *graph.Graph, opts ThreeECSSOptions) (*ThreeECSSResult, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: ThreeECSSOptions.Rng is required")
	}
	if err := validate3EC(g, opts); err != nil {
		return nil, err
	}
	var acc rounds.Accountant
	// Base subgraph H: BFS tree + O(D)-round augmentation [1].
	t0 := opts.Phase.phaseStart()
	h, _, err := baselines.TwoECSSUnweighted2Approx(g, 0)
	if err != nil {
		return nil, fmt.Errorf("core: base 2-ECSS: %w", err)
	}
	baseRounds := 2 * int64(g.DiameterEstimate())
	acc.Charge("base 2-ECSS [1]", baseRounds)
	opts.Phase.emit(PhaseEvent{Phase: "base", Start: t0, Rounds: baseRounds, Items: len(h)})
	return solve3ECSS(g, h, false, opts, &acc)
}

// validate3EC runs the up-front 3-edge-connectivity check (unless skipped),
// reporting it to the phase observer.
func validate3EC(g *graph.Graph, opts ThreeECSSOptions) error {
	if opts.SkipValidation {
		return nil
	}
	t0 := opts.Phase.phaseStart()
	ok := g.IsKEdgeConnected(3)
	opts.Phase.emit(PhaseEvent{Phase: "validate", Start: t0})
	if !ok {
		return fmt.Errorf("core: input graph is not 3-edge-connected")
	}
	return nil
}

// Solve3ECSSWeighted is the §5.4 weighted variant: the base H is the §3
// weighted 2-ECSS (MST + TAP) instead of the BFS-tree 2-approximation, and
// candidate cost-effectiveness is |Ce|/w(e). Per-iteration cost is governed
// by the height of H's spanning tree (Θ(hMST) in the worst case, which is
// why the paper calls the weighted variant slower: O(n·log³n) total).
func Solve3ECSSWeighted(g *graph.Graph, opts ThreeECSSOptions) (*ThreeECSSResult, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: ThreeECSSOptions.Rng is required")
	}
	if err := validate3EC(g, opts); err != nil {
		return nil, err
	}
	var acc rounds.Accountant
	t0 := opts.Phase.phaseStart()
	base, err := Solve2ECSS(g, TwoECSSOptions{Rng: opts.Rng})
	if err != nil {
		return nil, fmt.Errorf("core: weighted base 2-ECSS: %w", err)
	}
	acc.Charge("base weighted 2-ECSS (Thm 1.1)", base.Rounds)
	opts.Phase.emit(PhaseEvent{Phase: "base", Start: t0, Rounds: base.Rounds, Items: len(base.Edges)})
	return solve3ECSS(g, base.Edges, true, opts, &acc)
}

// Accounting labels of the solve3ECSS loop, shared with the breakdown
// regression tests.
const (
	chargeLabelScans   = "label scans (measured)"
	chargeAggregation  = "cost-effectiveness aggregation"
	chargeLabelUpdates = "incremental label dissemination (charged)"
	chargeFinalAgg     = "final aggregation (no candidates)"
	chargeRebalance    = "rebalance scans (measured)"
)

// solve3ECSS runs the §5 augmentation loop from the 2-edge-connected base h
// to 3-edge-connectivity. weighted selects the §5.4 cost-effectiveness
// |Ce|/w(e); otherwise ρ(e)=|Ce|.
//
// The cycle-space labeling of H ∪ A is maintained by the incremental engine
// (cycles.Incremental): the BFS tree and labels of H are computed once
// (distributed, measured), and each iteration only samples labels for the
// newly activated candidates and XORs them along their tree paths, with an
// O(height + |added|) dissemination charge. opts.ReferenceLabeling instead
// re-runs the full measured scan each iteration (labelSubgraphReference) —
// same results, different cost model.
func solve3ECSS(g *graph.Graph, h []int, weighted bool, opts ThreeECSSOptions, acc *rounds.Accountant) (*ThreeECSSResult, error) {
	bits := opts.LabelBits
	if bits == 0 {
		bits = 48
	}
	n := g.N()
	logn := int(rounds.Log2Ceil(n)) + 1
	phaseLen := opts.PhaseLen
	if phaseLen == 0 {
		phaseLen = 1
	}
	maxIters := opts.MaxIterations
	if maxIters == 0 {
		maxIters = 20*logn*logn*logn + 200
	}
	var simOpts []congest.Option
	if opts.Executor != nil {
		simOpts = append(simOpts, congest.WithExecutor(opts.Executor))
	}
	// The label scans run short-lived networks over g — the base scan once,
	// plus one per iteration under ReferenceLabeling — the arena's best case.
	simOpts = congest.WithDefaultArena(simOpts)
	if opts.Arena != nil {
		simOpts = append(simOpts, congest.WithArena(opts.Arena))
	}
	d := int64(g.DiameterEstimate())
	res := &ThreeECSSResult{BaseSize: len(h)}

	t0 := opts.Phase.phaseStart()
	eng, err := cycles.NewIncremental(g, h, bits, opts.Rng, opts.LabelArena, simOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: labeling base H: %w", err)
	}
	defer func() { eng.Release() }() // eng is rebound when Rebalance rebuilds
	res.LabelRoundsMeasured += int64(eng.Metrics.Rounds)
	acc.Charge(chargeLabelScans, int64(eng.Metrics.Rounds))
	opts.Phase.emit(PhaseEvent{
		Phase: "base-label", Start: t0,
		Rounds: int64(eng.Metrics.Rounds), Messages: eng.Metrics.Messages, Items: len(h),
	})
	height := int64(eng.Tree.Height())

	selected := make([]bool, g.M())
	for _, id := range h {
		selected[id] = true
	}
	sel := append([]int(nil), h...)

	mExp := 0
	for v := 1; v < g.M(); v <<= 1 {
		mExp++
	}
	pExp := mExp
	prevBest := 1 << 30
	itersAtThisP := 0

	var pool []int // candidate edge IDs at the maximum rounded value
	var added []int

	// The default path evaluates candidates output-sensitively: a
	// cycles.CoverIndex keeps every candidate's |Ce| current under the
	// engine's label updates (recomputing only candidates whose covering
	// tree edges changed), and expBuckets keep them sorted by rounded
	// exponent, so Lines 1–2 cost O(pool + changed candidates) per
	// iteration instead of an O(m·height) rescan. The ReferenceLabeling
	// oracle path below retains the full per-iteration rescan; the
	// equivalence corpus pins the two paths to identical results.
	var (
		cover   *cycles.CoverIndex
		bk      *expBuckets
		candIDs []int
		candIdx []int32 // host edge ID -> candidate index, -1 outside the pool
	)
	expFor := func(id int, ce int64) int {
		if !weighted {
			return tap.RoundedExp(ce, 1)
		}
		if w := g.Edge(id).W; w > 0 {
			return tap.RoundedExp(ce, w)
		}
		return infExp // weight-0 edges have infinite cost-effectiveness
	}
	refreshBuckets := func() {
		cover.Refresh(func(i int, ce int64) {
			if ce == 0 {
				bk.remove(i)
				return
			}
			bk.update(i, expFor(candIDs[i], ce))
		})
	}
	if !opts.ReferenceLabeling {
		candIDs = make([]int, 0, g.M()-len(h))
		candIdx = make([]int32, g.M())
		for i := range candIdx {
			candIdx[i] = -1
		}
		for _, e := range g.Edges() {
			if selected[e.ID] {
				continue
			}
			candIdx[e.ID] = int32(len(candIDs))
			candIDs = append(candIDs, e.ID)
		}
		cover = cycles.NewCoverIndex(eng, candIDs)
		bk = newExpBuckets(len(candIDs))
	}

	loopStart := opts.Phase.phaseStart()
	roundsAtLoop := acc.Total()
	for iters := 0; !eng.ThreeEdgeConnected(); {
		if iters >= maxIters {
			return nil, fmt.Errorf("core: 3-ECSS exceeded %d iterations", maxIters)
		}
		iters++

		// Lines 1–2: cost-effectiveness via Claim 5.8 (unit weights:
		// ρ(e) = |Ce|), candidates at the maximum rounded value.
		best := -(1 << 30)
		if cover != nil {
			refreshBuckets()
			pool, best = bk.pool(pool[:0], candIDs)
			sort.Ints(pool) // the legacy scan produced ascending IDs
		} else {
			pool = pool[:0]
			for _, e := range g.Edges() {
				if selected[e.ID] {
					continue
				}
				ce := eng.CoverCount(e.U, e.V)
				if ce == 0 {
					continue
				}
				exp := expFor(e.ID, ce)
				if exp > best {
					best = exp
					pool = pool[:0]
				}
				if exp == best {
					pool = append(pool, e.ID)
				}
			}
		}
		if len(pool) == 0 {
			// Labels say not 3-edge-connected but no candidate covers
			// anything: fall through to the exact correction below. The
			// pass is not a sampling iteration (its aggregation result is
			// discarded), but discovering the empty pool still costs the
			// 2D aggregation in the CONGEST model — charge it under its
			// own label so "cost-effectiveness aggregation" stays exactly
			// 2D per counted iteration.
			acc.Charge(chargeFinalAgg, 2*d)
			break
		}
		acc.Charge(chargeAggregation, 2*d)
		res.Iterations++
		if best < prevBest {
			pExp = mExp
			itersAtThisP = 0
		}
		prevBest = best

		// Line 3: every active candidate joins the augmentation directly
		// (no MST filter in the unweighted §5 variant).
		added = added[:0]
		for _, id := range pool {
			if pExp == 0 || opts.Rng.Int63n(1<<uint(pExp)) == 0 {
				added = append(added, id)
			}
		}
		if len(added) > 0 {
			if cover != nil {
				// Deactivate before AddEdges so the activation's own label
				// churn does not dirty the leaving candidates.
				for _, id := range added {
					cover.Deactivate(int(candIdx[id]))
					bk.remove(int(candIdx[id]))
				}
			}
			eng.AddEdges(added)
			for _, id := range added {
				selected[id] = true
				sel = append(sel, id)
			}
			if opts.ReferenceLabeling {
				labelRounds, err := labelSubgraphReference(eng, simOpts)
				if err != nil {
					return nil, err
				}
				res.LabelRoundsMeasured += labelRounds
				acc.Charge(chargeLabelScans, labelRounds)
			} else {
				// Dissemination of the new labels: each activated edge's
				// label floods its tree path; pipelined along the fixed
				// tree this is O(height + |added|) rounds.
				acc.Charge(chargeLabelUpdates, height+int64(len(added)))
			}
			if opts.Rebalance && cover != nil {
				// §5 rebalance: probe whether a BFS of G restricted to the
				// current H ∪ A would at least halve the labeling tree, and
				// only then rebuild the engine over it. The probe runs only
				// while the tree is tall, so well-balanced bases never pay.
				if curH := eng.Tree.Height(); curH > 4*logn {
					if nh := cycles.BFSHeight(g, sel); nh >= 0 && 2*nh <= curH {
						tr := opts.Phase.phaseStart()
						eng.Release()
						eng, err = cycles.NewIncremental(g, sel, bits, opts.Rng, opts.LabelArena, simOpts...)
						if err != nil {
							return nil, fmt.Errorf("core: rebalancing H∪A labeling: %w", err)
						}
						res.LabelRoundsMeasured += int64(eng.Metrics.Rounds)
						acc.Charge(chargeRebalance, int64(eng.Metrics.Rounds))
						height = int64(eng.Tree.Height())
						cover = cycles.NewCoverIndex(eng, candIDs)
						opts.Phase.emit(PhaseEvent{
							Phase: "rebalance", Start: tr,
							Rounds: int64(eng.Metrics.Rounds), Messages: eng.Metrics.Messages,
							Items: eng.Tree.Height(),
						})
					}
				}
			}
		}
		itersAtThisP++
		if itersAtThisP >= phaseLen*logn && pExp > 0 {
			pExp--
			itersAtThisP = 0
		}
	}

	opts.Phase.emit(PhaseEvent{
		Phase: "augment", Start: loopStart,
		Rounds: acc.Total() - roundsAtLoop, Iterations: res.Iterations,
		Items: len(sel) - len(h),
	})

	// Exact verification, then the correction loop if a cut pair survived.
	// (With this labeling construction the correction is belt-and-braces:
	// Property 5.1's equality holds with certainty for genuine cut pairs,
	// so the label-based termination can falsely reject but never falsely
	// certify, and a genuine cut pair always leaves a positive-CoverCount
	// candidate while g is 3-edge-connected — see correctTo3EC's test.)
	t0 = opts.Phase.phaseStart()
	corrections, err := correctTo3EC(g, selected, &sel, opts.CutEnum)
	if err != nil {
		return nil, err
	}
	res.CorrectionEdges = corrections
	opts.Phase.emit(PhaseEvent{Phase: "correction", Start: t0, Items: corrections})

	sort.Ints(sel)
	res.Edges = sel
	res.Size = len(sel)
	res.Weight = g.WeightOf(sel)
	res.Rounds = acc.Total()
	return res, nil
}

// labelSubgraphReference is the retained from-scratch labeling path: a full
// distributed label scan over the current H ∪ A (same tree, same non-tree
// labels), measured on the simulator. See cycles.Incremental.RelabelScan.
func labelSubgraphReference(eng *cycles.Incremental, simOpts []congest.Option) (int64, error) {
	labelRounds, err := eng.RelabelScan(simOpts...)
	if err != nil {
		return 0, fmt.Errorf("core: relabeling H∪A: %w", err)
	}
	return labelRounds, nil
}

// correctTo3EC brings a 2-edge-connected selection the last step to
// 3-edge-connectivity exactly: while the selected subgraph has a cut pair,
// cover one per round trip. Each round trip builds the selected subgraph
// once and shares it between the connectivity check and the cut
// enumeration. Returns the number of edges added.
func correctTo3EC(g *graph.Graph, selected []bool, sel *[]int, enumOpts CutEnumOptions) (int, error) {
	corrections := 0
	for {
		sub, _ := g.SubgraphOf(*sel)
		if sub.IsKEdgeConnected(3) {
			return corrections, nil
		}
		added, err := coverOneCutPairExactly(g, sub, selected, sel, enumOpts)
		if err != nil {
			return corrections, err
		}
		corrections += added
	}
}

// coverOneCutPairExactly enumerates the remaining size-2 minimum cuts of
// sub — the already-built subgraph of g selected by sel (the base H keeps
// it 2-edge-connected, so a not-yet-3-connected selection has λ = 2) — and
// adds the smallest-ID edge of g crossing the first one. Returns the number
// of edges added (always 1 on success).
func coverOneCutPairExactly(g *graph.Graph, sub *graph.Graph, selected []bool, sel *[]int, enumOpts CutEnumOptions) (int, error) {
	cuts, err := EnumerateMinCutsOpts(sub, 2, nil, enumOpts)
	if err != nil {
		return 0, fmt.Errorf("core: enumerating remaining cut pairs: %w", err)
	}
	if len(cuts) == 0 {
		// 2-edge-connected check must have failed for another reason.
		return 0, fmt.Errorf("core: subgraph not 3-edge-connected but has no cut pairs")
	}
	c := cuts[0]
	for _, e := range g.Edges() {
		if selected[e.ID] || !c.Crosses(e.U, e.V) {
			continue
		}
		selected[e.ID] = true
		*sel = append(*sel, e.ID)
		return 1, nil
	}
	return 0, fmt.Errorf("core: no edge of G covers a remaining cut pair (G not 3-edge-connected?)")
}
