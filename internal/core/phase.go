package core

import "time"

// PhaseEvent reports one completed phase of a solver run to a PhaseObserver:
// what ran, how long it took on the wall clock, and what it cost in the
// paper's CONGEST measure (rounds, and measured messages where the phase ran
// on the simulator rather than being charged analytically).
//
// Phases emitted per solver:
//
//	Solve2ECSS:             mst, tap
//	SolveKECSS:             validate, mst, cut-enum (per level),
//	                        augment (per level), audit (k >= 4)
//	Solve3ECSSUnweighted:   validate, base, base-label, augment, correction,
//	                        rebalance (only when Rebalance triggers)
//	Solve3ECSSWeighted:     validate, base, base-label, augment, correction,
//	                        rebalance (only when Rebalance triggers)
//	EnumerateMinCutsOpts:   ks-sweep, ks-materialise (size >= 3 only, via
//	                        CutEnumOptions.Phase; nested inside cut-enum
//	                        when Aug forwards its observer)
//
// Validate events fire only when the solver itself runs the connectivity
// check; callers that pre-validate (kecss.Pool sweeps set SkipValidation)
// see no validate phase.
type PhaseEvent struct {
	// Phase names the phase (see above).
	Phase string
	// Level is the augmentation level for level-scoped phases of SolveKECSS
	// (cut-enum, augment), 0 otherwise.
	Level int
	// Start is when the phase began (carries this process's monotonic
	// reading, so Start/Duration pairs from one solve are totally ordered).
	Start time.Time
	// Duration is the phase's wall-clock duration.
	Duration time.Duration
	// Rounds is the phase's charged/measured CONGEST round count.
	Rounds int64
	// Messages is the simulator-measured message count, for phases that ran
	// real message passing (simulated MST, cycle-space label scans); 0 for
	// analytically charged phases.
	Messages int64
	// Iterations is the phase's sampling-iteration count (augment, tap).
	Iterations int
	// Items is the phase-specific size: cuts enumerated (cut-enum), edges
	// added (augment, tap, mst, base), corrections (correction).
	Items int
}

// PhaseObserver receives PhaseEvents during a solve. Observers run
// synchronously on the solving goroutine and must be cheap; a nil observer
// costs nothing (solvers check for nil before capturing any timestamps, so
// the disabled hook adds no allocations to the hot path).
type PhaseObserver func(PhaseEvent)

// phaseStart captures a phase start time only when an observer is
// installed; the zero time it returns otherwise is never read.
func (o PhaseObserver) phaseStart() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now() //kecss:nondeterministic-ok phase timings feed observer telemetry only, never solver output
}

// emit delivers the event, filling Duration from Start. No-op when nil.
func (o PhaseObserver) emit(ev PhaseEvent) {
	if o == nil {
		return
	}
	ev.Duration = time.Since(ev.Start) //kecss:nondeterministic-ok durations feed observer telemetry only, never solver output
	o(ev)
}
