package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/rounds"
	"repro/internal/tap"
	"repro/internal/tree"
)

// TwoECSSOptions configures the weighted 2-ECSS solver (§3, Theorem 1.1).
// The option value (and the arena it may carry) lives for one Solve call
// on the caller's goroutine.
//
//kecss:arena-owner
type TwoECSSOptions struct {
	// Rng drives the TAP voting. Required.
	Rng *rand.Rand
	// TAP tunes the augmentation step; its Rng field is overridden by Rng.
	TAP tap.Options
	// SimulateMST runs the MST as real message passing (measured rounds)
	// instead of Kruskal + the charged Kutten–Peleg bound.
	SimulateMST bool
	// Executor selects the simulator executor when SimulateMST is set.
	Executor congest.Executor
	// Arena, if set, supplies reusable simulation buffers (for repetition
	// sweeps that solve many same-sized instances).
	Arena *congest.NetworkArena
	// Phase, if set, receives a PhaseEvent per completed phase (mst, tap).
	// Nil costs nothing.
	Phase PhaseObserver
}

// TwoECSSResult is the outcome of the 2-ECSS computation.
type TwoECSSResult struct {
	// Edges is the 2-edge-connected spanning subgraph (MST ∪ augmentation).
	Edges []int
	// Weight is its total weight.
	Weight int64
	// MSTWeight is the weight of the underlying MST (also a lower bound on
	// the optimal 2-ECSS, used by the ratio experiments).
	MSTWeight int64
	// Rounds is the total charged/measured rounds (Theorem 1.1:
	// O((D+√n)·log²n) w.h.p.).
	Rounds int64
	// TAP is the augmentation sub-result (iterations, breakdown, decomposition).
	TAP *tap.Result
	// Tree is the rooted MST the augmentation ran on.
	Tree *tree.Rooted
}

// Solve2ECSS computes a 2-edge-connected spanning subgraph of g: an MST
// followed by the §3 weighted TAP augmentation, per Claim 2.1 (the MST is
// the optimal Aug_1, TAP is the O(log n)-approximate Aug_2, so the result is
// an O(log n)-approximation of the minimum weight 2-ECSS).
func Solve2ECSS(g *graph.Graph, opts TwoECSSOptions) (*TwoECSSResult, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: TwoECSSOptions.Rng is required")
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("core: need at least 2 vertices")
	}
	var (
		mstIDs      []int
		mstWeight   int64
		mstRounds   int64
		mstMessages int64
	)
	t0 := opts.Phase.phaseStart()
	if opts.SimulateMST {
		var simOpts []congest.Option
		if opts.Executor != nil {
			simOpts = append(simOpts, congest.WithExecutor(opts.Executor))
		}
		if opts.Arena != nil {
			simOpts = append(simOpts, congest.WithArena(opts.Arena))
		}
		mres, err := mst.DistributedBoruvka(g, simOpts...)
		if err != nil {
			return nil, fmt.Errorf("core: distributed MST: %w", err)
		}
		mstIDs, mstWeight, mstRounds = mres.EdgeIDs, mres.Weight, int64(mres.Metrics.Rounds)
		mstMessages = mres.Metrics.Messages
	} else {
		mstIDs, mstWeight = mst.Kruskal(g)
		mstRounds = rounds.MSTKuttenPeleg(g.N(), g.DiameterEstimate())
	}
	opts.Phase.emit(PhaseEvent{
		Phase: "mst", Start: t0,
		Rounds: mstRounds, Messages: mstMessages, Items: len(mstIDs),
	})
	tr, err := tree.FromEdges(g, mstIDs, 0)
	if err != nil {
		return nil, fmt.Errorf("core: rooting MST: %w", err)
	}
	topts := opts.TAP
	topts.Rng = opts.Rng
	t0 = opts.Phase.phaseStart()
	tres, err := tap.Augment(g, tr, topts)
	if err != nil {
		return nil, fmt.Errorf("core: TAP augmentation: %w", err)
	}
	opts.Phase.emit(PhaseEvent{
		Phase: "tap", Start: t0,
		Rounds: tres.Rounds, Iterations: tres.Iterations, Items: len(tres.Augmentation),
	})
	edges := append(append([]int(nil), mstIDs...), tres.Augmentation...)
	sort.Ints(edges)
	return &TwoECSSResult{
		Edges:     edges,
		Weight:    g.WeightOf(edges),
		MSTWeight: mstWeight,
		Rounds:    mstRounds + tres.Rounds,
		TAP:       tres,
		Tree:      tr,
	}, nil
}
