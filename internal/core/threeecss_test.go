package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestSolve3ECSSWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomKConnected(14+rng.Intn(10), 3, 18, rng, graph.RandomWeights(rng, 30))
		res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sub, _ := g.SubgraphOf(res.Edges)
		if !sub.IsKEdgeConnected(3) {
			t.Fatalf("trial %d: weighted 3-ECSS result not 3-edge-connected", trial)
		}
		if res.Weight != g.WeightOf(res.Edges) {
			t.Fatalf("trial %d: weight %d != recomputed %d", trial, res.Weight, g.WeightOf(res.Edges))
		}
		if res.Weight <= 0 || res.Size != len(res.Edges) {
			t.Fatalf("trial %d: bad bookkeeping: %+v", trial, res)
		}
	}
}

func TestSolve3ECSSWeightedPrefersLightEdges(t *testing.T) {
	// A 4-edge-connected circulant where one copy of every chord class is
	// free and the rest expensive: the weighted variant should land well
	// under the all-expensive weight.
	rng := rand.New(rand.NewSource(33))
	g := graph.Circulant(12, 2, func(i int) int64 {
		if i%2 == 0 {
			return 1
		}
		return 100
	})
	_ = rng
	res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := g.SubgraphOf(res.Edges)
	if !sub.IsKEdgeConnected(3) {
		t.Fatal("not 3-edge-connected")
	}
	if res.Weight >= g.TotalWeight() {
		t.Fatalf("weighted variant kept everything: %d >= %d", res.Weight, g.TotalWeight())
	}
}

func TestSolve3ECSSWeightedVsUnweightedObjective(t *testing.T) {
	// On a weighted instance, the weighted variant should not be (much)
	// heavier than the unweighted one, which ignores weights entirely.
	rng := rand.New(rand.NewSource(37))
	g := graph.RandomKConnected(18, 3, 24, rng, graph.RandomWeights(rng, 50))
	w, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Solve3ECSSUnweighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if w.Weight > 3*u.Weight {
		t.Fatalf("weighted variant (%d) much heavier than weight-blind one (%d)", w.Weight, u.Weight)
	}
}
