package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestSolve3ECSSWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomKConnected(14+rng.Intn(10), 3, 18, rng, graph.RandomWeights(rng, 30))
		res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sub, _ := g.SubgraphOf(res.Edges)
		if !sub.IsKEdgeConnected(3) {
			t.Fatalf("trial %d: weighted 3-ECSS result not 3-edge-connected", trial)
		}
		if res.Weight != g.WeightOf(res.Edges) {
			t.Fatalf("trial %d: weight %d != recomputed %d", trial, res.Weight, g.WeightOf(res.Edges))
		}
		if res.Weight <= 0 || res.Size != len(res.Edges) {
			t.Fatalf("trial %d: bad bookkeeping: %+v", trial, res)
		}
	}
}

func TestSolve3ECSSWeightedPrefersLightEdges(t *testing.T) {
	// A 4-edge-connected circulant where one copy of every chord class is
	// free and the rest expensive: the weighted variant should land well
	// under the all-expensive weight.
	rng := rand.New(rand.NewSource(33))
	g := graph.Circulant(12, 2, func(i int) int64 {
		if i%2 == 0 {
			return 1
		}
		return 100
	})
	_ = rng
	res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := g.SubgraphOf(res.Edges)
	if !sub.IsKEdgeConnected(3) {
		t.Fatal("not 3-edge-connected")
	}
	if res.Weight >= g.TotalWeight() {
		t.Fatalf("weighted variant kept everything: %d >= %d", res.Weight, g.TotalWeight())
	}
}

func TestSolve3ECSSWeightedBaseSelection(t *testing.T) {
	// The weighted variant must build its base with the §3 weighted 2-ECSS
	// (MST + TAP), not the BFS-tree 2-approximation: with the same seed, the
	// base is exactly Solve2ECSS's edge set, and every base edge survives
	// into the final answer (the loop only ever adds).
	rng := rand.New(rand.NewSource(51))
	g := graph.RandomKConnected(16, 3, 20, rng, graph.RandomWeights(rng, 40))
	base, err := Solve2ECSS(g, TwoECSSOptions{Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseSize != len(base.Edges) {
		t.Fatalf("BaseSize %d != weighted 2-ECSS size %d", res.BaseSize, len(base.Edges))
	}
	in := make(map[int]bool, len(res.Edges))
	for _, id := range res.Edges {
		in[id] = true
	}
	for _, id := range base.Edges {
		if !in[id] {
			t.Fatalf("base edge %d missing from the final subgraph", id)
		}
	}
}

func TestSolve3ECSSWeightedZeroWeightEdges(t *testing.T) {
	// Weight-0 candidates have infinite cost-effectiveness (the W == 0
	// branch skips RoundedExp entirely), so as long as a free candidate
	// covers anything, no priced edge enters the activation pool: on a ring
	// of weight-1 edges with weight-0 distance-2 chords, the augmentation
	// must be entirely free.
	n := 12
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, 1)
	}
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+2)%n, 0)
	}
	res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := g.SubgraphOf(res.Edges)
	if !sub.IsKEdgeConnected(3) {
		t.Fatal("not 3-edge-connected")
	}
	freeSelected := 0
	for _, id := range res.Edges {
		if g.Edge(id).W == 0 {
			freeSelected++
		}
	}
	if freeSelected == 0 {
		t.Fatal("no weight-0 edge was selected")
	}
	// The base must pick up all n ring edges at most (weight n); everything
	// beyond it must have been free.
	if res.Weight > int64(n) {
		t.Fatalf("augmentation paid for priced edges: weight %d > ring weight %d", res.Weight, n)
	}
}

func TestSolve3ECSSWeightedNarrowLabelsStillExact(t *testing.T) {
	// Narrowing LabelBits floods the labeling with collisions — but the
	// collision direction is one-sided: Property 5.1's label equality holds
	// with certainty for genuine cut pairs (every fundamental cycle crosses
	// a 2-cut an even number of times), so the Claim 5.10 termination can
	// falsely reject, never falsely certify. The solver therefore stays
	// exact at any width, with the exact correction path untriggered
	// (CorrectionEdges = 0 — see TestCorrectTo3EC for the path itself).
	rng := rand.New(rand.NewSource(53))
	g := graph.RandomKConnected(14, 3, 16, rng, graph.RandomWeights(rng, 25))
	for _, bits := range []int{1, 2, 4} {
		res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{
			Rng:       rand.New(rand.NewSource(int64(bits))),
			LabelBits: bits,
		})
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		sub, _ := g.SubgraphOf(res.Edges)
		if !sub.IsKEdgeConnected(3) {
			t.Fatalf("bits=%d: output not 3-edge-connected", bits)
		}
		if res.CorrectionEdges != 0 {
			t.Fatalf("bits=%d: %d corrections — the one-sided error argument is broken",
				bits, res.CorrectionEdges)
		}
	}
}

// circulant12 builds the {±1, ±2} circulant on n vertices: the first n edge
// IDs are the weight-1 ring, the next n the distance-2 chords.
func circulant12(n int, chordW int64) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, 1)
	}
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+2)%n, chordW)
	}
	return g
}

func TestCorrectTo3EC(t *testing.T) {
	// The exact correction path is unreachable through the solvers on a
	// valid input (see TestSolve3ECSSWeightedNarrowLabelsStillExact), so
	// exercise it directly: a 2-edge-connected ring selection inside a
	// 4-edge-connected circulant must be augmented to 3-edge-connectivity,
	// one covered cut pair per round trip.
	n := 12
	g := circulant12(n, 1)
	sel := make([]int, 0, n)
	selected := make([]bool, g.M())
	for id := 0; id < n; id++ { // the ring: 2EC, every adjacent edge pair is a cut pair
		sel = append(sel, id)
		selected[id] = true
	}
	added, err := correctTo3EC(g, selected, &sel, CutEnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("no corrections on a non-3EC selection")
	}
	if added != len(sel)-n {
		t.Fatalf("reported %d corrections, selection grew by %d", added, len(sel)-n)
	}
	sub, _ := g.SubgraphOf(sel)
	if !sub.IsKEdgeConnected(3) {
		t.Fatal("correction loop did not reach 3-edge-connectivity")
	}

	// On a host that is not 3-edge-connected the loop must report that no
	// edge can cover the remaining pair instead of spinning.
	ring := graph.Cycle(6, graph.UnitWeights())
	all := make([]int, ring.M())
	allSel := make([]bool, ring.M())
	for i := range all {
		all[i] = i
		allSel[i] = true
	}
	if _, err := correctTo3EC(ring, allSel, &all, CutEnumOptions{}); err == nil {
		t.Fatal("expected an error on an under-connected host")
	}
}

func TestSolve3ECSSWeightedVsUnweightedObjective(t *testing.T) {
	// On a weighted instance, the weighted variant should not be (much)
	// heavier than the unweighted one, which ignores weights entirely.
	rng := rand.New(rand.NewSource(37))
	g := graph.RandomKConnected(18, 3, 24, rng, graph.RandomWeights(rng, 50))
	w, err := Solve3ECSSWeighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Solve3ECSSUnweighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if w.Weight > 3*u.Weight {
		t.Fatalf("weighted variant (%d) much heavier than weight-blind one (%d)", w.Weight, u.Weight)
	}
}
