package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/congest"
	"repro/internal/cycles"
	"repro/internal/graph"
	"repro/internal/rounds"
)

// solve3 runs one 3-ECSS solve with the given labeling strategy. All corpus
// instances are λ >= 3 (the same generator families the cut-enumeration
// corpus pins), so both variants accept them.
func solve3(t *testing.T, g *graph.Graph, weighted bool, seed int64, ref, parallel bool) *ThreeECSSResult {
	t.Helper()
	opts := ThreeECSSOptions{
		Rng:               rand.New(rand.NewSource(seed)),
		ReferenceLabeling: ref,
	}
	if parallel {
		opts.Executor = congest.ParallelExecutor{}
	}
	solve := Solve3ECSSUnweighted
	if weighted {
		solve = Solve3ECSSWeighted
	}
	res, err := solve(g, opts)
	if err != nil {
		t.Fatalf("solve3 (weighted=%v, ref=%v): %v", weighted, ref, err)
	}
	return res
}

// TestSolve3ECSSLabelingEquivalenceCorpus asserts, across the ten generator
// families of the cut-enumeration corpus, that the incremental labeling
// engine and the retained from-scratch reference scan drive Solve3ECSS to
// exactly the same result — same edges, size, weight, base, iterations and
// corrections (round totals legitimately differ: the reference measures
// every per-iteration scan, the incremental engine charges its updates) —
// and that the incremental engine is byte-identical under the parallel
// executor (run with -race in CI).
func TestSolve3ECSSLabelingEquivalenceCorpus(t *testing.T) {
	for _, tc := range equivCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			for _, weighted := range []bool{false, true} {
				inc := solve3(t, g, weighted, 42, false, false)
				ref := solve3(t, g, weighted, 42, true, false)
				if !reflect.DeepEqual(inc.Edges, ref.Edges) {
					t.Fatalf("weighted=%v: edges differ: incremental %d edges, reference %d",
						weighted, len(inc.Edges), len(ref.Edges))
				}
				if inc.Size != ref.Size || inc.Weight != ref.Weight ||
					inc.BaseSize != ref.BaseSize || inc.Iterations != ref.Iterations ||
					inc.CorrectionEdges != ref.CorrectionEdges {
					t.Fatalf("weighted=%v: decision stats differ:\nincremental %+v\nreference   %+v",
						weighted, inc, ref)
				}
				par := solve3(t, g, weighted, 42, false, true)
				if !reflect.DeepEqual(inc, par) {
					t.Fatalf("weighted=%v: sequential vs parallel executor not byte-identical:\n%+v\n%+v",
						weighted, inc, par)
				}
			}
		})
	}
}

// TestSolve3ECSSArenaEquivalence: pooled label + simulation arenas must not
// change any result, and consecutive solves recycling one arena pair must
// not leak state into each other.
func TestSolve3ECSSArenaEquivalence(t *testing.T) {
	la := cycles.NewLabelArena()
	na := congest.NewArena()
	for _, tc := range equivCorpus()[:4] {
		g := tc.build()
		want, err := Solve3ECSSUnweighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(7))})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := Solve3ECSSUnweighted(g, ThreeECSSOptions{
			Rng: rand.New(rand.NewSource(7)), Arena: na, LabelArena: la,
		})
		if err != nil {
			t.Fatalf("%s pooled: %v", tc.name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: pooled arenas changed the result", tc.name)
		}
	}
}

// TestSolve3ECSSAccountingBreakdown pins the round-accounting contract of
// the augmentation loop: the 2D cost-effectiveness aggregation is charged
// exactly once per counted iteration — in particular NOT on the empty-pool
// fall-through pass whose aggregation result is discarded — and the
// measured label rounds in the breakdown equal LabelRoundsMeasured.
func TestSolve3ECSSAccountingBreakdown(t *testing.T) {
	byLabel := func(acc *rounds.Accountant) map[string]int64 {
		out := map[string]int64{}
		for _, c := range acc.Breakdown() {
			out[c.Label] = c.Rounds
		}
		return out
	}

	t.Run("normal run charges 2D per counted iteration", func(t *testing.T) {
		g := graph.Harary(3, 16, graph.UnitWeights())
		h, _, err := baselines.TwoECSSUnweighted2Approx(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		var acc rounds.Accountant
		res, err := solve3ECSS(g, h, false, ThreeECSSOptions{Rng: rand.New(rand.NewSource(3))}, &acc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations == 0 {
			t.Fatal("instance drift: want at least one iteration")
		}
		d := int64(g.DiameterEstimate())
		b := byLabel(&acc)
		if got, want := b[chargeAggregation], 2*d*int64(res.Iterations); got != want {
			t.Fatalf("aggregation charged %d rounds, want 2D·Iterations = %d", got, want)
		}
		if b[chargeLabelScans] != res.LabelRoundsMeasured {
			t.Fatalf("measured label rounds %d in breakdown, %d in result",
				b[chargeLabelScans], res.LabelRoundsMeasured)
		}
		if b[chargeLabelUpdates] == 0 {
			t.Fatal("no incremental dissemination was charged")
		}
	})

	t.Run("empty-pool fall-through is not an iteration", func(t *testing.T) {
		// Base = all of g with 1-bit labels: the n-1 tree edges pigeonhole
		// onto 2 label values, so Claim 5.10 can never certify, there are no
		// candidates left to add, and the very first pass falls through to
		// the exact verification. The discarded pass must not be counted or
		// charged as a sampling iteration — but discovering the empty pool
		// still costs one 2D aggregation, charged under its own label.
		g := graph.Harary(3, 12, graph.UnitWeights())
		all := make([]int, g.M())
		for i := range all {
			all[i] = i
		}
		var acc rounds.Accountant
		res, err := solve3ECSS(g, all, false, ThreeECSSOptions{
			Rng:       rand.New(rand.NewSource(1)),
			LabelBits: 1,
		}, &acc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != 0 {
			t.Fatalf("fall-through pass was counted: Iterations = %d", res.Iterations)
		}
		b := byLabel(&acc)
		if got, ok := b[chargeAggregation]; ok {
			t.Fatalf("discarded pass was charged as a per-iteration aggregation (%d rounds)", got)
		}
		if got, want := b[chargeFinalAgg], 2*int64(g.DiameterEstimate()); got != want {
			t.Fatalf("final aggregation charged %d rounds, want 2D = %d", got, want)
		}
		if b[chargeLabelScans] != res.LabelRoundsMeasured || res.LabelRoundsMeasured == 0 {
			t.Fatalf("label scan accounting broken: breakdown %d, measured %d",
				b[chargeLabelScans], res.LabelRoundsMeasured)
		}
		if res.Rounds != acc.Total() {
			t.Fatalf("Rounds %d != accountant total %d", res.Rounds, acc.Total())
		}
	})
}

// mobiusRing builds the weighted Möbius ladder C(n; 1, n/2): an n-cycle of
// weight-1 edges plus all n/2 weight-8 diameter chords. λ=3, and the
// weighted 2-ECSS base is the cheap ring, so the labeling tree starts as a
// path of height n/2 = Θ(n) — the §5 worst case the Rebalance option
// targets.
func mobiusRing(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	for i := 0; i < n/2; i++ {
		g.AddEdge(i, i+n/2, 8)
	}
	return g
}

// TestSolve3ECSSRebalanceEquivalence drives the §5 tree rebalancing on
// Θ(n)-height bases and pins its contract: the rebalanced solve stays a
// valid deterministic 3-ECSS, the rebuild actually fires (a "rebalance"
// PhaseEvent with the post-rebuild height at most half the ring height),
// and disabling the option on the same instance never emits the event. The
// two trajectories legitimately diverge after the rebuild (the fresh engine
// resamples labels, as documented on the option), so equivalence is checked
// at the contract level — validity, determinism, and event discipline —
// not byte equality.
func TestSolve3ECSSRebalanceEquivalence(t *testing.T) {
	for _, n := range []int{128, 256} {
		run := func(rebalance bool, seed int64) (*ThreeECSSResult, []PhaseEvent) {
			var events []PhaseEvent
			g := mobiusRing(n)
			res, err := Solve3ECSSWeighted(g, ThreeECSSOptions{
				Rng:       rand.New(rand.NewSource(seed)),
				Rebalance: rebalance,
				Phase:     func(ev PhaseEvent) { events = append(events, ev) },
			})
			if err != nil {
				t.Fatalf("n=%d rebalance=%v: %v", n, rebalance, err)
			}
			g2 := mobiusRing(n)
			sub, _ := g2.SubgraphOf(res.Edges)
			if !sub.IsKEdgeConnected(3) {
				t.Fatalf("n=%d rebalance=%v: result is not 3-edge-connected", n, rebalance)
			}
			return res, events
		}
		countReb := func(events []PhaseEvent) (int, int) {
			count, minH := 0, 1<<30
			for _, ev := range events {
				if ev.Phase == "rebalance" {
					count++
					if ev.Items < minH {
						minH = ev.Items
					}
				}
			}
			return count, minH
		}

		on, onEvents := run(true, 5)
		nReb, newH := countReb(onEvents)
		if nReb == 0 {
			t.Fatalf("n=%d: Θ(n)-height base never triggered a rebalance", n)
		}
		if newH > n/4 {
			t.Fatalf("n=%d: rebalanced height %d did not halve the ring height %d", n, newH, n/2)
		}
		off, offEvents := run(false, 5)
		if c, _ := countReb(offEvents); c != 0 {
			t.Fatalf("n=%d: rebalance event emitted with the option off", n)
		}
		// Both paths must be individually deterministic.
		on2, _ := run(true, 5)
		if !reflect.DeepEqual(on, on2) {
			t.Fatalf("n=%d: rebalanced solve is not deterministic", n)
		}
		off2, _ := run(false, 5)
		if !reflect.DeepEqual(off, off2) {
			t.Fatalf("n=%d: unbalanced solve is not deterministic", n)
		}
		// The rebalanced run pays measured rebuild rounds on top; its result
		// quality must stay in the same regime as the unbalanced run.
		if on.Size > off.Size+off.Size/4 || off.Size > on.Size+on.Size/4 {
			t.Fatalf("n=%d: sizes diverged beyond the family's regime: rebalanced %d, unbalanced %d",
				n, on.Size, off.Size)
		}
	}
}
