package segments

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/tree"
)

// buildCase produces a (graph, rooted MST) pair for decomposition tests.
func buildCase(t *testing.T, g *graph.Graph) (*graph.Graph, *tree.Rooted) {
	t.Helper()
	ids, _ := mst.Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func starGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, 1)
	}
	return g
}

func testCases(t *testing.T) map[string]struct {
	g  *graph.Graph
	tr *tree.Rooted
} {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	cases := map[string]struct {
		g  *graph.Graph
		tr *tree.Rooted
	}{}
	add := func(name string, g *graph.Graph) {
		gg, tr := buildCase(t, g)
		cases[name] = struct {
			g  *graph.Graph
			tr *tree.Rooted
		}{gg, tr}
	}
	add("path100", pathGraph(100))
	add("star50", starGraph(50))
	add("grid", graph.Grid(8, 9, graph.UnitWeights()))
	add("random", graph.RandomKConnected(120, 2, 150, rng, graph.RandomWeights(rng, 40)))
	add("cliquechain", graph.CliqueChain(10, 5, 2, graph.RandomWeights(rng, 9)))
	add("tiny", pathGraph(2))
	return cases
}

func TestLemma34Properties(t *testing.T) {
	for name, tc := range testCases(t) {
		t.Run(name, func(t *testing.T) {
			n := tc.g.N()
			target := DefaultTarget(n)
			d, err := Decompose(tc.g, tc.tr, target)
			if err != nil {
				t.Fatal(err)
			}
			// (1) root is marked; every vertex has a marked ancestor within
			// target hops.
			if !d.Marked[tc.tr.Root] {
				t.Error("root not marked")
			}
			for v := 0; v < n; v++ {
				found := false
				x := v
				for hop := 0; hop <= target && x != -1; hop++ {
					if d.Marked[x] {
						found = true
						break
					}
					x = tc.tr.Parent[x]
				}
				if !found {
					t.Errorf("vertex %d has no marked ancestor within %d hops", v, target)
				}
			}
			// (2) closed under LCA.
			var marked []int
			for v := 0; v < n; v++ {
				if d.Marked[v] {
					marked = append(marked, v)
				}
			}
			for i := 0; i < len(marked); i++ {
				for j := i + 1; j < len(marked); j++ {
					if l := tc.tr.LCA(marked[i], marked[j]); !d.Marked[l] {
						t.Fatalf("LCA(%d,%d)=%d not marked", marked[i], marked[j], l)
					}
				}
			}
			// (3) O(n/target) marked vertices.
			if got, bound := d.MarkedCount(), 6*(n/target+1); got > bound {
				t.Errorf("marked = %d, want <= %d", got, bound)
			}
		})
	}
}

func TestSegmentStructure(t *testing.T) {
	for name, tc := range testCases(t) {
		t.Run(name, func(t *testing.T) {
			n := tc.g.N()
			target := DefaultTarget(n)
			d, err := Decompose(tc.g, tc.tr, target)
			if err != nil {
				t.Fatal(err)
			}
			// Edge-disjoint cover of all n-1 tree edges.
			assigned := 0
			for _, segID := range d.SegOfEdge {
				if segID != -1 {
					assigned++
				}
			}
			if assigned != n-1 {
				t.Fatalf("SegOfEdge covers %d edges, want %d", assigned, n-1)
			}
			// Segment count O(√n): at most 2 per marked vertex.
			if len(d.Segments) > 2*d.MarkedCount() {
				t.Errorf("%d segments for %d marked vertices", len(d.Segments), d.MarkedCount())
			}
			// Diameter O(target).
			if got, bound := d.MaxSegmentDiameter(), 2*target+2; got > bound {
				t.Errorf("max segment diameter = %d, want <= %d", got, bound)
			}
			for _, seg := range d.Segments {
				// Root is an ancestor of every vertex of the segment.
				for _, v := range seg.Vertices {
					if !tc.tr.IsAncestor(seg.Root, v) {
						t.Fatalf("segment %d: root %d is not an ancestor of %d", seg.ID, seg.Root, v)
					}
				}
				// Highway runs root..desc and its edges are in the segment.
				if seg.Highway[0] != seg.Root || seg.Highway[len(seg.Highway)-1] != seg.Desc {
					t.Fatalf("segment %d: highway endpoints %v", seg.ID, seg.Highway)
				}
				for _, he := range seg.HighwayEdges {
					if d.SegOfEdge[he] != seg.ID {
						t.Fatalf("segment %d: highway edge %d assigned to segment %d", seg.ID, he, d.SegOfEdge[he])
					}
				}
				// Internal vertices (not root/desc) touch no tree edge that
				// leaves the segment.
				inSeg := make(map[int]bool, len(seg.Vertices))
				for _, v := range seg.Vertices {
					inSeg[v] = true
				}
				for _, v := range seg.Vertices {
					if v == seg.Root || v == seg.Desc {
						continue
					}
					if p := tc.tr.Parent[v]; p != -1 && !inSeg[p] {
						t.Fatalf("segment %d: internal vertex %d has parent %d outside", seg.ID, v, p)
					}
					for _, c := range tc.tr.Children(v) {
						if !inSeg[c] {
							t.Fatalf("segment %d: internal vertex %d has child %d outside", seg.ID, v, c)
						}
					}
				}
			}
			// Every vertex has a home segment (when segments exist at all).
			if len(d.Segments) > 0 {
				for v := 0; v < n; v++ {
					if d.HomeSegment(v) == nil {
						t.Errorf("vertex %d has no home segment", v)
					}
				}
			}
		})
	}
}

func TestSegmentCountScaling(t *testing.T) {
	// #segments and marked count should grow like √n, not n (E9's claim).
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{100, 400, 1600} {
		g := graph.RandomKConnected(n, 2, n, rng, graph.RandomWeights(rng, 50))
		ids, _ := mst.Kruskal(g)
		tr, err := tree.FromEdges(g, ids, 0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Decompose(g, tr, DefaultTarget(n))
		if err != nil {
			t.Fatal(err)
		}
		sqrtN := DefaultTarget(n)
		if got := len(d.Segments); got > 8*sqrtN {
			t.Errorf("n=%d: %d segments, want O(√n)=O(%d)", n, got, sqrtN)
		}
	}
}

func TestSkeletonPathMatchesTreePath(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.RandomKConnected(150, 2, 120, rng, graph.RandomWeights(rng, 60))
	ids, _ := mst.Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(g, tr, DefaultTarget(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	var marked []int
	for v := 0; v < g.N(); v++ {
		if d.Marked[v] {
			marked = append(marked, v)
		}
	}
	if len(marked) < 2 {
		t.Skip("too few marked vertices for this instance")
	}
	for trial := 0; trial < 50; trial++ {
		a := marked[rng.Intn(len(marked))]
		b := marked[rng.Intn(len(marked))]
		path, err := d.SkeletonPath(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Concatenated highways along the skeleton path = tree path edges.
		edgeSet := map[int]bool{}
		for i := 0; i+1 < len(path); i++ {
			x, y := path[i], path[i+1]
			// One of x,y is the dS of the segment between them.
			var seg *Segment
			for _, s := range d.Segments {
				if (s.Root == x && s.Desc == y) || (s.Root == y && s.Desc == x) {
					seg = s
					break
				}
			}
			if seg == nil {
				t.Fatalf("no segment for skeleton edge {%d,%d}", x, y)
			}
			for _, e := range seg.HighwayEdges {
				edgeSet[e] = true
			}
		}
		want := tr.PathEdges(a, b)
		if len(edgeSet) != len(want) {
			t.Fatalf("skeleton path %d-%d: %d edges, want %d", a, b, len(edgeSet), len(want))
		}
		for _, e := range want {
			if !edgeSet[e] {
				t.Fatalf("skeleton path %d-%d missing tree edge %d", a, b, e)
			}
		}
	}
}

func TestSkeletonPathErrorsOnUnmarked(t *testing.T) {
	g, tr := buildCase(t, pathGraph(30))
	d, err := Decompose(g, tr, DefaultTarget(30))
	if err != nil {
		t.Fatal(err)
	}
	unmarked := -1
	for v := 0; v < g.N(); v++ {
		if !d.Marked[v] {
			unmarked = v
			break
		}
	}
	if unmarked == -1 {
		t.Skip("everything marked")
	}
	if _, err := d.SkeletonPath(unmarked, tr.Root); err == nil {
		t.Fatal("expected error for unmarked endpoint")
	}
}

func TestDecomposeRejectsBadTarget(t *testing.T) {
	g, tr := buildCase(t, pathGraph(5))
	if _, err := Decompose(g, tr, 0); err == nil {
		t.Fatal("expected error for target 0")
	}
}

func TestSegmentOfEdgeUnknownEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomKConnected(20, 2, 20, rng, graph.UnitWeights())
	ids, _ := mst.Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(g, tr, DefaultTarget(20))
	if err != nil {
		t.Fatal(err)
	}
	inTree := tr.IsTreeEdge()
	nonTree := -1
	for _, e := range g.Edges() {
		if !inTree[e.ID] {
			nonTree = e.ID
			break
		}
	}
	if nonTree == -1 {
		t.Fatal("no non-tree edge")
	}
	if _, err := d.SegmentOfEdge(nonTree); err == nil {
		t.Fatal("expected error for non-tree edge")
	}
	sort.Ints(ids)
	if _, err := d.SegmentOfEdge(ids[0]); err != nil {
		t.Fatalf("tree edge lookup failed: %v", err)
	}
}
