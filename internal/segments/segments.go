// Package segments implements the tree decomposition of Section 3.2 of the
// paper (following Ghaffari–Parter's FT-MST decomposition): the spanning
// tree is decomposed into O(√n) edge-disjoint segments of diameter O(√n),
// each with a root rS, a unique descendant dS, a highway (the rS–dS tree
// path) and hanging subtrees, plus the skeleton tree whose edges correspond
// to highways.
//
// The paper's first step uses the Kutten–Peleg MST fragments; here the
// fragments are carved deterministically from the tree by subtree-size
// accumulation, which yields the same guarantees (O(n/target) fragments,
// each of height at most target — Lemma 3.4's requirements).
//
//kecss:deterministic
package segments

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/tree"
)

// Segment is one segment of the decomposition. The highway runs from Root
// (an ancestor of every vertex in the segment) down to Desc, the unique
// descendant; Root == Desc for root-attached segments with an empty highway.
type Segment struct {
	ID           int
	Root         int   // rS
	Desc         int   // dS
	Highway      []int // vertices Root..Desc along the tree path (len >= 1)
	HighwayEdges []int // graph edge IDs along the highway (len = len(Highway)-1)
	Vertices     []int // every vertex of the segment, including Root and Desc
}

// Diameter returns the segment's diameter measured in the tree: the longest
// tree distance between two of its vertices. Since Root is an ancestor of
// all vertices, this is at most twice the segment height.
func (s *Segment) Diameter(t *tree.Rooted) int {
	max1, max2 := 0, 0 // two largest depths below Root
	for _, v := range s.Vertices {
		d := t.Depth[v] - t.Depth[s.Root]
		if d > max1 {
			max1, max2 = d, max1
		} else if d > max2 {
			max2 = d
		}
	}
	// Upper bound on intra-segment distance: two deepest vertices may only
	// meet at Root.
	if max2 > 0 {
		return max1 + max2
	}
	return max1
}

// Decomposition is the full output of the §3.2 construction.
type Decomposition struct {
	G      *graph.Graph
	Tree   *tree.Rooted
	Target int // the √n parameter

	FragmentRoot []int  // per vertex: root of its fragment (step I)
	GlobalEdges  []int  // tree edge IDs joining different fragments
	Marked       []bool // step II marking, closed under LCA

	Segments    []*Segment
	SegOfVertex []int // home segment per vertex (see HomeSegment)
	// SegOfEdge maps each graph edge ID to the unique segment containing it,
	// or -1 for non-tree edges (dense slice: the per-edge lookup is on the
	// hot path of the TAP information flows).
	SegOfEdge []int

	// SkeletonParent maps each marked vertex to its parent in the skeleton
	// tree (the rS of the segment whose dS it is); the root maps to -1.
	SkeletonParent map[int]int
}

// DefaultTarget returns the ⌈√n⌉ decomposition parameter used by the paper.
func DefaultTarget(n int) int {
	t := int(math.Ceil(math.Sqrt(float64(n))))
	if t < 1 {
		t = 1
	}
	return t
}

// Decompose runs the three-step construction of §3.2 on the rooted tree t of
// graph g with the given size target (pass DefaultTarget(n) for the paper's
// setting).
func Decompose(g *graph.Graph, t *tree.Rooted, target int) (*Decomposition, error) {
	if target < 1 {
		return nil, fmt.Errorf("segments: target %d < 1", target)
	}
	n := t.N()
	d := &Decomposition{
		G:              g,
		Tree:           t,
		Target:         target,
		FragmentRoot:   make([]int, n),
		Marked:         make([]bool, n),
		SegOfVertex:    make([]int, n),
		SegOfEdge:      make([]int, g.M()),
		SkeletonParent: make(map[int]int),
	}
	for i := range d.SegOfEdge {
		d.SegOfEdge[i] = -1
	}
	d.carveFragments()
	d.markVertices()
	if err := d.buildSegments(); err != nil {
		return nil, err
	}
	return d, nil
}

// carveFragments is step (I): decompose the tree into fragments of height at
// most target, with at most n/target+1 fragments, by cutting the edge above
// any vertex whose accumulated uncut subtree reaches the target size.
func (d *Decomposition) carveFragments() {
	t := d.Tree
	n := t.N()
	carry := make([]int, n)
	isFragRoot := make([]bool, n)
	isFragRoot[t.Root] = true
	for _, v := range t.PostOrder() {
		carry[v] = 1
		for _, c := range t.Children(v) {
			if !isFragRoot[c] {
				carry[v] += carry[c]
			}
		}
		if v != t.Root && carry[v] >= d.Target {
			isFragRoot[v] = true
		}
	}
	// Fragment membership: nearest fragment-root ancestor (inclusive).
	for _, v := range t.PreOrder() {
		if isFragRoot[v] {
			d.FragmentRoot[v] = v
		} else {
			d.FragmentRoot[v] = d.FragmentRoot[t.Parent[v]]
		}
	}
	d.GlobalEdges = d.GlobalEdges[:0]
	for v := 0; v < n; v++ {
		if v != t.Root && isFragRoot[v] {
			d.GlobalEdges = append(d.GlobalEdges, t.ParentEdge[v])
		}
	}
	sort.Ints(d.GlobalEdges)
}

// markVertices is step (II): mark the root and the endpoints of every global
// edge, then close the set under LCA (a vertex is an LCA of marked vertices
// iff at least two of its child subtrees contain marked vertices).
func (d *Decomposition) markVertices() {
	t := d.Tree
	d.Marked[t.Root] = true
	for _, id := range d.GlobalEdges {
		e := d.G.Edge(id)
		d.Marked[e.U] = true
		d.Marked[e.V] = true
	}
	containsMarked := make([]bool, t.N())
	for _, v := range t.PostOrder() {
		markedSubtrees := 0
		for _, c := range t.Children(v) {
			if containsMarked[c] {
				markedSubtrees++
			}
		}
		if markedSubtrees >= 2 {
			d.Marked[v] = true
		}
		containsMarked[v] = d.Marked[v] || markedSubtrees > 0
	}
}

// buildSegments is step (III): each marked vertex dS != root defines a
// highway up to its nearest marked proper ancestor rS; hanging subtrees
// attach to the segment of the highway vertex above them; subtrees hanging
// directly under marked vertices with no marked descendants attach to a
// segment rooted there (reusing an existing one if the marked vertex is
// already some segment's root, else a fresh (v,v) segment).
func (d *Decomposition) buildSegments() error {
	t := d.Tree
	n := t.N()
	for v := range d.SegOfVertex {
		d.SegOfVertex[v] = -1
	}
	onHighway := make([]int, n) // segment ID if v is an internal highway vertex, else -1
	for v := range onHighway {
		onHighway[v] = -1
	}

	// Highways: deepest-first so SkeletonParent is complete.
	marked := make([]int, 0, d.MarkedCount())
	for v := 0; v < n; v++ {
		if d.Marked[v] {
			marked = append(marked, v)
		}
	}
	// Stable ordering: depth descending, vertex ID ascending within a depth
	// (matching the previous sort's effective order on distinct keys).
	slices.SortFunc(marked, func(a, b int) int {
		if t.Depth[a] != t.Depth[b] {
			return t.Depth[b] - t.Depth[a]
		}
		return a - b
	})

	segRootedAt := make(map[int]int) // marked vertex -> smallest segment ID rooted there
	for _, dS := range marked {
		if dS == t.Root {
			d.SkeletonParent[t.Root] = -1
			continue
		}
		rS := t.Parent[dS]
		for !d.Marked[rS] {
			rS = t.Parent[rS]
		}
		seg := &Segment{ID: len(d.Segments), Root: rS, Desc: dS}
		// Highway from rS down to dS; its length is the depth difference, so
		// both lists are allocated exactly once.
		hwLen := t.Depth[dS] - t.Depth[rS]
		seg.Highway = make([]int, hwLen+1)
		seg.HighwayEdges = make([]int, 0, hwLen)
		seg.Highway[0] = rS
		i := hwLen
		for x := dS; x != rS; x = t.Parent[x] {
			seg.Highway[i] = x
			i--
		}
		for _, x := range seg.Highway[1:] {
			seg.HighwayEdges = append(seg.HighwayEdges, t.ParentEdge[x])
			d.SegOfEdge[t.ParentEdge[x]] = seg.ID
		}
		sort.Ints(seg.HighwayEdges)
		for _, x := range seg.Highway[1 : len(seg.Highway)-1] {
			onHighway[x] = seg.ID
			d.SegOfVertex[x] = seg.ID // internal highway vertices live only here
		}
		d.Segments = append(d.Segments, seg)
		d.SkeletonParent[dS] = rS
		d.SegOfVertex[dS] = seg.ID // home segment of a marked vertex: the one it is dS of
		if _, ok := segRootedAt[rS]; !ok {
			segRootedAt[rS] = seg.ID
		}
	}

	// Hanging subtrees, in pre-order so parents are resolved first.
	// hangSeg[v] = segment a hanging vertex belongs to.
	hangSeg := make([]int, n)
	for v := range hangSeg {
		hangSeg[v] = -1
	}
	for _, v := range t.PreOrder() {
		if v == t.Root || d.Marked[v] || onHighway[v] != -1 {
			continue
		}
		p := t.Parent[v]
		switch {
		case onHighway[p] != -1:
			hangSeg[v] = onHighway[p]
		case d.Marked[p]:
			segID, ok := segRootedAt[p]
			if !ok {
				seg := &Segment{ID: len(d.Segments), Root: p, Desc: p, Highway: []int{p}}
				d.Segments = append(d.Segments, seg)
				segRootedAt[p] = seg.ID
				segID = seg.ID
			}
			hangSeg[v] = segID
		default:
			hangSeg[v] = hangSeg[p]
			if hangSeg[v] == -1 {
				return fmt.Errorf("segments: hanging vertex %d has unresolved parent %d", v, p)
			}
		}
		d.SegOfVertex[v] = hangSeg[v]
		d.SegOfEdge[t.ParentEdge[v]] = hangSeg[v]
	}

	// Home segment for the root, if unset: any segment rooted at it.
	if d.SegOfVertex[t.Root] == -1 {
		if segID, ok := segRootedAt[t.Root]; ok {
			d.SegOfVertex[t.Root] = segID
		} else if len(d.Segments) > 0 {
			return fmt.Errorf("segments: root %d belongs to no segment", t.Root)
		}
	}

	// Vertex lists: every vertex joins its home segment; highway vertices
	// and roots/descendants join the segments of their highways too.
	// Members are appended with duplicates and deduplicated by the final
	// sort, which the lists need anyway.
	for v := 0; v < n; v++ {
		if segID := d.SegOfVertex[v]; segID >= 0 {
			d.Segments[segID].Vertices = append(d.Segments[segID].Vertices, v)
		}
	}
	for _, seg := range d.Segments {
		seg.Vertices = append(seg.Vertices, seg.Highway...)
	}
	for _, seg := range d.Segments {
		sort.Ints(seg.Vertices)
		uniq := seg.Vertices[:0]
		for i, v := range seg.Vertices {
			if i == 0 || v != seg.Vertices[i-1] {
				uniq = append(uniq, v)
			}
		}
		seg.Vertices = uniq
	}
	return nil
}

// MarkedCount returns the number of marked vertices.
func (d *Decomposition) MarkedCount() int {
	c := 0
	for _, m := range d.Marked {
		if m {
			c++
		}
	}
	return c
}

// MaxSegmentDiameter returns the largest segment diameter (the O(√n)
// quantity each per-iteration pipeline pays for).
func (d *Decomposition) MaxSegmentDiameter() int {
	max := 0
	for _, s := range d.Segments {
		if dd := s.Diameter(d.Tree); dd > max {
			max = dd
		}
	}
	return max
}

// HomeSegment returns the segment the algorithm treats as v's own: for an
// unmarked vertex the unique segment containing it; for a marked vertex the
// segment it is the unique descendant of (or a segment rooted at it, for
// the tree root).
func (d *Decomposition) HomeSegment(v int) *Segment {
	id := d.SegOfVertex[v]
	if id < 0 {
		return nil
	}
	return d.Segments[id]
}

// SegmentOfEdge returns the unique segment containing the given tree edge.
func (d *Decomposition) SegmentOfEdge(treeEdgeID int) (*Segment, error) {
	if treeEdgeID < 0 || treeEdgeID >= len(d.SegOfEdge) || d.SegOfEdge[treeEdgeID] == -1 {
		return nil, fmt.Errorf("segments: edge %d is not a tree edge of the decomposition", treeEdgeID)
	}
	return d.Segments[d.SegOfEdge[treeEdgeID]], nil
}

// SkeletonPath returns the marked vertices on the skeleton-tree path from a
// to b (both must be marked), inclusive. Implemented by walking up with
// SkeletonParent, exactly the computation each vertex performs locally after
// learning the complete skeleton tree (Claim 3.1).
func (d *Decomposition) SkeletonPath(a, b int) ([]int, error) {
	if !d.Marked[a] || !d.Marked[b] {
		return nil, fmt.Errorf("segments: skeleton path endpoints %d,%d must be marked", a, b)
	}
	depth := func(v int) int { return d.Tree.Depth[v] }
	var up, down []int
	x, y := a, b
	// Climb the deeper side until the walks meet; skeleton parents are tree
	// ancestors, so depths strictly decrease and the walks meet at the
	// (marked, by LCA closure) skeleton LCA.
	for x != y {
		if depth(x) >= depth(y) {
			up = append(up, x)
			x = d.SkeletonParent[x]
		} else {
			down = append(down, y)
			y = d.SkeletonParent[y]
		}
	}
	up = append(up, x)
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up, nil
}
