package tree

// HPD is a heavy-path decomposition of a Rooted tree: every vertex is
// assigned to the path of its subtree-heaviest child, so any root-to-leaf
// walk crosses O(log n) path heads regardless of the tree's height. The
// decomposition positions are a preorder that keeps each heavy path
// contiguous (head first, increasing with depth), which is what turns tree
// paths into O(log n) contiguous position ranges — the cycle-space cover
// index sums Fenwick prefix ranges over them to answer CoverCount path
// queries in O(log² n) instead of O(height).
//
// An HPD is immutable after NewHPD and safe for concurrent reads.
type HPD struct {
	T *Rooted
	// Pos[v] is v's position in the decomposition order; the tree edge
	// {v, Parent[v]} lives at Pos[v] (the root's position carries no edge).
	Pos []int
	// Head[v] is the topmost vertex of v's heavy path.
	Head []int
	// order is the inverse of Pos: order[Pos[v]] = v.
	order []int
	// size[v] is the number of vertices in v's subtree; together with Pos
	// (a preorder) it gives O(1) ancestor tests.
	size []int
}

// NewHPD decomposes t. O(n).
func NewHPD(t *Rooted) *HPD {
	n := t.N()
	h := &HPD{
		T:     t,
		Pos:   make([]int, n),
		Head:  make([]int, n),
		order: make([]int, n),
		size:  t.SubtreeSizes(),
	}
	heavy := make([]int, n)
	for v := 0; v < n; v++ {
		heavy[v] = -1
		best := 0
		for _, c := range t.Children(v) {
			if h.size[c] > best {
				best = h.size[c]
				heavy[v] = c
			}
		}
	}
	// Preorder traversal that always descends into the heavy child first,
	// so each heavy path occupies a contiguous, depth-increasing position
	// range starting at its head.
	next := 0
	stack := append(make([]int, 0, 64), t.Root)
	h.Head[t.Root] = t.Root
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.Pos[v] = next
		h.order[next] = v
		next++
		// Push light children (visited after the whole heavy path), then
		// the heavy child last so it is popped first.
		for _, c := range t.Children(v) {
			if c != heavy[v] {
				h.Head[c] = c
				stack = append(stack, c)
			}
		}
		if hc := heavy[v]; hc != -1 {
			h.Head[hc] = h.Head[v]
			stack = append(stack, hc)
		}
	}
	return h
}

// VertexAt returns the vertex at decomposition position p.
func (h *HPD) VertexAt(p int) int { return h.order[p] }

// IsAncestor reports whether a is an ancestor of v (inclusive), in O(1):
// positions are a preorder, so a's subtree is the range
// [Pos[a], Pos[a]+size[a]).
func (h *HPD) IsAncestor(a, v int) bool {
	return h.Pos[a] <= h.Pos[v] && h.Pos[v] < h.Pos[a]+h.size[a]
}

// LCA returns the lowest common ancestor of u and v by head jumping —
// O(log n) independent of the tree's height (Rooted.LCA walks O(height)).
func (h *HPD) LCA(u, v int) int {
	d := h.T.Depth
	for h.Head[u] != h.Head[v] {
		if d[h.Head[u]] < d[h.Head[v]] {
			u, v = v, u
		}
		u = h.T.Parent[h.Head[u]]
	}
	if d[u] < d[v] {
		return u
	}
	return v
}

// OnPath reports whether the tree edge {x, Parent[x]} lies on the tree path
// between u and v, in O(1): the edge separates u from v iff exactly one of
// them is in x's subtree.
func (h *HPD) OnPath(x, u, v int) bool {
	return h.IsAncestor(x, u) != h.IsAncestor(x, v)
}

// ForEachPathSegment calls fn with the inclusive position ranges [lo, hi]
// that together cover exactly the edges of the u–v tree path (edge
// {x, Parent[x]} at position Pos[x]). O(log n) ranges.
func (h *HPD) ForEachPathSegment(u, v int, fn func(lo, hi int)) {
	d := h.T.Depth
	for h.Head[u] != h.Head[v] {
		if d[h.Head[u]] < d[h.Head[v]] {
			u, v = v, u
		}
		fn(h.Pos[h.Head[u]], h.Pos[u])
		u = h.T.Parent[h.Head[u]]
	}
	if u != v {
		if d[u] > d[v] {
			u, v = v, u
		}
		// u is now the LCA; its own position carries the edge above the
		// LCA, which is not on the path — start one past it.
		fn(h.Pos[u]+1, h.Pos[v])
	}
}
