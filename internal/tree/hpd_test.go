package tree

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomRooted builds a random tree over n vertices: vertex v > 0 attaches
// to a uniform earlier vertex. skew < 1 biases parents toward v-1, producing
// path-like Θ(n)-height trees — the case HPD exists for.
func randomRooted(t *testing.T, rng *rand.Rand, n int, skew float64) *Rooted {
	t.Helper()
	g := graph.New(n)
	ids := make([]int, 0, n-1)
	for v := 1; v < n; v++ {
		p := v - 1
		if rng.Float64() < skew {
			p = rng.Intn(v)
		}
		ids = append(ids, g.AddEdge(p, v, 1))
	}
	tr, err := FromEdges(g, ids, 0)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return tr
}

func TestHPDAgainstRooted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		n    int
		skew float64
	}{
		{2, 1}, {3, 1}, {17, 1}, {64, 0.5}, {200, 1},
		{200, 0.05}, // essentially a path: height Θ(n)
		{333, 0},    // exactly a path
	} {
		tr := randomRooted(t, rng, tc.n, tc.skew)
		h := NewHPD(tr)

		// Positions are a permutation with the root first, and each heavy
		// path is contiguous: Pos[v] = Pos[Parent[v]]+1 whenever v continues
		// its parent's path.
		if h.Pos[tr.Root] != 0 {
			t.Fatalf("n=%d: root at position %d", tc.n, h.Pos[tr.Root])
		}
		for v := 0; v < tc.n; v++ {
			if h.VertexAt(h.Pos[v]) != v {
				t.Fatalf("n=%d: order/Pos disagree at %d", tc.n, v)
			}
			if v != tr.Root && h.Head[v] != v && h.Pos[v] != h.Pos[tr.Parent[v]]+1 {
				t.Fatalf("n=%d: heavy path not contiguous at %d", tc.n, v)
			}
		}

		for trial := 0; trial < 300; trial++ {
			u, v := rng.Intn(tc.n), rng.Intn(tc.n)
			if got, want := h.LCA(u, v), tr.LCA(u, v); got != want {
				t.Fatalf("n=%d: LCA(%d,%d) = %d, want %d", tc.n, u, v, got, want)
			}
			for x := 0; x < tc.n; x++ {
				if got, want := h.IsAncestor(x, u), tr.IsAncestor(x, u); got != want {
					t.Fatalf("n=%d: IsAncestor(%d,%d) = %v, want %v", tc.n, x, u, got, want)
				}
			}

			// Segment union == PathEdges, and OnPath agrees edge by edge.
			want := map[int]bool{}
			for _, id := range tr.PathEdges(u, v) {
				want[id] = true
			}
			got := map[int]bool{}
			edges := 0
			h.ForEachPathSegment(u, v, func(lo, hi int) {
				if lo > hi {
					t.Fatalf("n=%d: empty segment [%d,%d]", tc.n, lo, hi)
				}
				for p := lo; p <= hi; p++ {
					x := h.VertexAt(p)
					got[tr.ParentEdge[x]] = true
					edges++
				}
			})
			if edges != len(want) {
				t.Fatalf("n=%d: path(%d,%d) segments cover %d edges, want %d", tc.n, u, v, edges, len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("n=%d: path(%d,%d) missing edge %d", tc.n, u, v, id)
				}
			}
			for x := 0; x < tc.n; x++ {
				if x == tr.Root {
					continue
				}
				if on := h.OnPath(x, u, v); on != want[tr.ParentEdge[x]] {
					t.Fatalf("n=%d: OnPath(%d,%d,%d) = %v, want %v", tc.n, x, u, v, on, !on)
				}
			}
		}
	}
}
