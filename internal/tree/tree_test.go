package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// sampleTree builds the fixed tree
//
//	    0
//	   / \
//	  1   2
//	 / \   \
//	3   4   5
//	    |
//	    6
//
// over a graph whose edges are exactly the tree edges.
func sampleTree(t *testing.T) (*graph.Graph, *Rooted) {
	t.Helper()
	g := graph.New(7)
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {4, 6}}
	ids := make([]int, len(pairs))
	for i, p := range pairs {
		ids[i] = g.AddEdge(p[0], p[1], 1)
	}
	tr, err := FromEdges(g, ids, 0)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g, tr
}

func TestFromEdgesBasics(t *testing.T) {
	_, tr := sampleTree(t)
	if tr.Root != 0 || tr.N() != 7 {
		t.Fatalf("root=%d n=%d", tr.Root, tr.N())
	}
	wantDepth := []int{0, 1, 1, 2, 2, 2, 3}
	for v, d := range wantDepth {
		if tr.Depth[v] != d {
			t.Errorf("Depth[%d] = %d, want %d", v, tr.Depth[v], d)
		}
	}
	if tr.Height() != 3 {
		t.Errorf("Height = %d, want 3", tr.Height())
	}
	if !tr.IsLeaf(3) || tr.IsLeaf(1) {
		t.Error("leaf detection wrong")
	}
	if len(tr.EdgeIDs()) != 6 {
		t.Errorf("EdgeIDs len = %d", len(tr.EdgeIDs()))
	}
}

func TestLCA(t *testing.T) {
	_, tr := sampleTree(t)
	tests := []struct{ u, v, want int }{
		{3, 4, 1}, {3, 6, 1}, {6, 5, 0}, {3, 3, 3},
		{0, 6, 0}, {4, 6, 4}, {1, 2, 0}, {5, 2, 2},
	}
	for _, tc := range tests {
		if got := tr.LCA(tc.u, tc.v); got != tc.want {
			t.Errorf("LCA(%d,%d) = %d, want %d", tc.u, tc.v, got, tc.want)
		}
		if got := tr.LCA(tc.v, tc.u); got != tc.want {
			t.Errorf("LCA(%d,%d) = %d, want %d (symmetry)", tc.v, tc.u, got, tc.want)
		}
	}
}

func TestPathEdgesAndVertices(t *testing.T) {
	_, tr := sampleTree(t)
	edges := tr.PathEdges(3, 6)
	if len(edges) != 3 { // 3-1, 1-4, 4-6
		t.Fatalf("PathEdges(3,6) = %v, want 3 edges", edges)
	}
	verts := tr.PathVertices(3, 6)
	want := []int{3, 1, 4, 6}
	if len(verts) != len(want) {
		t.Fatalf("PathVertices(3,6) = %v, want %v", verts, want)
	}
	for i := range want {
		if verts[i] != want[i] {
			t.Fatalf("PathVertices(3,6) = %v, want %v", verts, want)
		}
	}
	if got := tr.PathVertices(5, 5); len(got) != 1 || got[0] != 5 {
		t.Fatalf("PathVertices(5,5) = %v", got)
	}
	if got := tr.PathEdges(2, 2); len(got) != 0 {
		t.Fatalf("PathEdges(2,2) = %v, want empty", got)
	}
}

func TestTraversalOrders(t *testing.T) {
	_, tr := sampleTree(t)
	post := tr.PostOrder()
	pos := make(map[int]int, len(post))
	for i, v := range post {
		pos[v] = i
	}
	for v := 0; v < tr.N(); v++ {
		for _, c := range tr.Children(v) {
			if pos[c] > pos[v] {
				t.Errorf("post-order: child %d after parent %d", c, v)
			}
		}
	}
	pre := tr.PreOrder()
	pos = make(map[int]int, len(pre))
	for i, v := range pre {
		pos[v] = i
	}
	for v := 0; v < tr.N(); v++ {
		for _, c := range tr.Children(v) {
			if pos[c] < pos[v] {
				t.Errorf("pre-order: child %d before parent %d", c, v)
			}
		}
	}
}

func TestSubtreeSizes(t *testing.T) {
	_, tr := sampleTree(t)
	size := tr.SubtreeSizes()
	want := []int{7, 4, 2, 1, 2, 1, 1}
	for v := range want {
		if size[v] != want[v] {
			t.Errorf("size[%d] = %d, want %d", v, size[v], want[v])
		}
	}
}

func TestIsAncestor(t *testing.T) {
	_, tr := sampleTree(t)
	if !tr.IsAncestor(1, 6) || !tr.IsAncestor(0, 0) || tr.IsAncestor(6, 1) || tr.IsAncestor(2, 3) {
		t.Fatal("IsAncestor wrong")
	}
}

func TestFromParentsValidation(t *testing.T) {
	tests := []struct {
		name       string
		root       int
		parent     []int
		parentEdge []int
	}{
		{"bad root", 0, []int{1, -1}, []int{0, -1}},
		{"length mismatch", 0, []int{-1, 0}, []int{-1}},
		{"cycle", 0, []int{-1, 2, 1}, []int{-1, 0, 1}},
		{"out of range parent", 0, []int{-1, 9}, []int{-1, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromParents(tc.root, tc.parent, tc.parentEdge); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestFromBFS(t *testing.T) {
	g := graph.Grid(3, 3, graph.UnitWeights())
	tr, err := FromBFS(g.BFS(4))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 4 {
		t.Fatalf("root = %d", tr.Root)
	}
	for v := 0; v < g.N(); v++ {
		if tr.Depth[v] != g.BFS(4).Dist[v] {
			t.Errorf("depth mismatch at %d", v)
		}
	}
}

// Property: on random BFS trees, PathEdges(u,v) length equals
// Depth[u]+Depth[v]-2*Depth[LCA], and LCA agrees with a brute-force
// ancestor-set intersection.
func TestLCAQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomKConnected(40, 2, 30, rng, graph.UnitWeights())
	tr, err := FromBFS(g.BFS(0))
	if err != nil {
		t.Fatal(err)
	}
	ancestors := func(v int) map[int]bool {
		out := map[int]bool{}
		for x := v; x != -1; x = tr.Parent[x] {
			out[x] = true
		}
		return out
	}
	f := func(a, b uint8) bool {
		u, v := int(a)%40, int(b)%40
		l := tr.LCA(u, v)
		// Brute force: deepest common ancestor.
		au := ancestors(u)
		best, bestDepth := -1, -1
		for x := range ancestors(v) {
			if au[x] && tr.Depth[x] > bestDepth {
				best, bestDepth = x, tr.Depth[x]
			}
		}
		if l != best {
			return false
		}
		return len(tr.PathEdges(u, v)) == tr.Depth[u]+tr.Depth[v]-2*tr.Depth[l]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
