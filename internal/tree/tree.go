// Package tree provides rooted spanning-tree utilities shared by the MST,
// segment-decomposition, TAP and cycle-space modules: parent/children
// structure, depth, LCA, tree paths and traversal orders.
//
//kecss:deterministic
package tree

import (
	"fmt"

	"repro/internal/graph"
)

// Rooted is a rooted spanning tree of a graph, described by parent pointers.
// ParentEdge holds graph edge IDs, so tree edges can be correlated with the
// underlying graph's edges (the paper constantly distinguishes "tree edges"
// from "non-tree edges").
type Rooted struct {
	Root       int
	Parent     []int // Parent[v], -1 at root
	ParentEdge []int // graph edge ID of {v, Parent[v]}, -1 at root
	Depth      []int
	children   [][]int
}

// FromParents builds a Rooted tree and validates it: exactly one root, all
// vertices reachable, acyclic.
func FromParents(root int, parent, parentEdge []int) (*Rooted, error) {
	n := len(parent)
	if len(parentEdge) != n {
		return nil, fmt.Errorf("tree: parent/parentEdge length mismatch %d vs %d", n, len(parentEdge))
	}
	if root < 0 || root >= n || parent[root] != -1 {
		return nil, fmt.Errorf("tree: invalid root %d", root)
	}
	t := &Rooted{
		Root:       root,
		Parent:     parent,
		ParentEdge: parentEdge,
		Depth:      make([]int, n),
		children:   make([][]int, n),
	}
	// Children lists are carved from one flat array: count, prefix-sum, fill.
	counts := make([]int, n)
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		p := parent[v]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("tree: vertex %d has invalid parent %d", v, p)
		}
		counts[p]++
	}
	flat := make([]int, n-1)
	off := 0
	for v := 0; v < n; v++ {
		t.children[v] = flat[off : off : off+counts[v]]
		off += counts[v]
	}
	for v := 0; v < n; v++ {
		if v != root {
			p := parent[v]
			t.children[p] = append(t.children[p], v)
		}
	}
	// Compute depths by BFS from root; detects unreachable vertices (which
	// with n-1 parent pointers also rules out cycles).
	for v := range t.Depth {
		t.Depth[v] = -1
	}
	t.Depth[root] = 0
	queue := []int{root}
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.children[v] {
			t.Depth[c] = t.Depth[v] + 1
			visited++
			queue = append(queue, c)
		}
	}
	if visited != n {
		return nil, fmt.Errorf("tree: only %d of %d vertices reachable from root", visited, n)
	}
	return t, nil
}

// MustFromParents is FromParents, panicking on error. For use with inputs
// produced by this repository's own algorithms, where failure is a bug.
func MustFromParents(root int, parent, parentEdge []int) *Rooted {
	t, err := FromParents(root, parent, parentEdge)
	if err != nil {
		panic(err)
	}
	return t
}

// FromBFS converts a complete BFS result into a rooted tree.
func FromBFS(res *graph.BFSResult) (*Rooted, error) {
	return FromParents(res.Source, res.Parent, res.ParentEdge)
}

// FromEdges roots the tree formed by the given graph edge IDs at root.
// The edges must form a spanning tree of g.
func FromEdges(g *graph.Graph, edgeIDs []int, root int) (*Rooted, error) {
	if len(edgeIDs) != g.N()-1 {
		return nil, fmt.Errorf("tree: %d edges cannot span %d vertices", len(edgeIDs), g.N())
	}
	// Tree adjacency carved from one flat array: count, prefix-sum, fill.
	adj := make([][]graph.Arc, g.N())
	counts := make([]int, g.N())
	for _, id := range edgeIDs {
		e := g.Edge(id)
		counts[e.U]++
		counts[e.V]++
	}
	flat := make([]graph.Arc, 2*len(edgeIDs))
	off := 0
	for v := range adj {
		adj[v] = flat[off : off : off+counts[v]]
		off += counts[v]
	}
	for _, id := range edgeIDs {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, Edge: id})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, Edge: id})
	}
	parent := make([]int, g.N())
	parentEdge := make([]int, g.N())
	for v := range parent {
		parent[v] = -2
		parentEdge[v] = -1
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range adj[v] {
			if parent[a.To] == -2 {
				parent[a.To] = v
				parentEdge[a.To] = a.Edge
				queue = append(queue, a.To)
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("tree: vertex %d not spanned", v)
		}
	}
	return FromParents(root, parent, parentEdge)
}

// MustFromEdges is FromEdges, panicking on error. For inputs produced by
// this repository's own algorithms, where failure is a bug.
func MustFromEdges(g *graph.Graph, edgeIDs []int, root int) *Rooted {
	t, err := FromEdges(g, edgeIDs, root)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of vertices.
func (t *Rooted) N() int { return len(t.Parent) }

// Children returns v's children. Callers must not mutate it.
func (t *Rooted) Children(v int) []int { return t.children[v] }

// IsLeaf reports whether v has no children.
func (t *Rooted) IsLeaf(v int) bool { return len(t.children[v]) == 0 }

// Height returns the maximum depth.
func (t *Rooted) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// EdgeIDs returns the graph edge IDs of all tree edges.
func (t *Rooted) EdgeIDs() []int {
	out := make([]int, 0, t.N()-1)
	for v := range t.Parent {
		if v != t.Root {
			out = append(out, t.ParentEdge[v])
		}
	}
	return out
}

// IsTreeEdge reports, as a lookup set, which graph edge IDs are tree edges.
func (t *Rooted) IsTreeEdge() map[int]bool {
	set := make(map[int]bool, t.N()-1)
	for v := range t.Parent {
		if v != t.Root {
			set[t.ParentEdge[v]] = true
		}
	}
	return set
}

// LCA returns the lowest common ancestor of u and v by walking up from the
// deeper vertex. O(depth); the trees in this repository have depth O(√n) or
// O(D), so this is within the budget everywhere it is used.
func (t *Rooted) LCA(u, v int) int {
	for t.Depth[u] > t.Depth[v] {
		u = t.Parent[u]
	}
	for t.Depth[v] > t.Depth[u] {
		v = t.Parent[v]
	}
	for u != v {
		u = t.Parent[u]
		v = t.Parent[v]
	}
	return u
}

// PathLen returns the number of edges on the unique tree path between u and
// v, without materializing it.
func (t *Rooted) PathLen(u, v int) int {
	l := t.LCA(u, v)
	return t.Depth[u] + t.Depth[v] - 2*t.Depth[l]
}

// PathEdges returns the graph edge IDs on the unique tree path between u and
// v (the set S¹_e of the paper for a non-tree edge e={u,v}).
func (t *Rooted) PathEdges(u, v int) []int {
	return t.AppendPathEdges(make([]int, 0, t.PathLen(u, v)), u, v)
}

// AppendPathEdges appends the graph edge IDs of the u–v tree path to buf and
// returns the extended slice. Allocation-free when buf has capacity
// (bulk callers size it with PathLen).
func (t *Rooted) AppendPathEdges(buf []int, u, v int) []int {
	l := t.LCA(u, v)
	for x := u; x != l; x = t.Parent[x] {
		buf = append(buf, t.ParentEdge[x])
	}
	for x := v; x != l; x = t.Parent[x] {
		buf = append(buf, t.ParentEdge[x])
	}
	return buf
}

// ForEachPathEdge calls fn with each graph edge ID on the unique u–v tree
// path (first the u-side edges walking up to the LCA, then the v-side ones).
// Allocation-free: the per-iteration hot paths of the incremental
// cycle-space labeling use it instead of materializing path slices.
//
//kecss:alloc-free
func (t *Rooted) ForEachPathEdge(u, v int, fn func(edgeID int)) {
	l := t.LCA(u, v)
	for x := u; x != l; x = t.Parent[x] {
		fn(t.ParentEdge[x])
	}
	for x := v; x != l; x = t.Parent[x] {
		fn(t.ParentEdge[x])
	}
}

// PathVertices returns the vertices on the tree path from u to v, inclusive,
// in order u..LCA..v.
func (t *Rooted) PathVertices(u, v int) []int {
	l := t.LCA(u, v)
	var up []int
	for x := u; x != l; x = t.Parent[x] {
		up = append(up, x)
	}
	up = append(up, l)
	var down []int
	for x := v; x != l; x = t.Parent[x] {
		down = append(down, x)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// PostOrder returns the vertices in post-order (children before parents) —
// the order of leaf-to-root scans such as the cycle-space label computation.
func (t *Rooted) PostOrder() []int {
	out := make([]int, 0, t.N())
	type frame struct {
		v, idx int
	}
	stack := []frame{{t.Root, 0}} //kecss:noescape
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.idx < len(t.children[top.v]) {
			c := t.children[top.v][top.idx]
			top.idx++
			stack = append(stack, frame{c, 0})
		} else {
			out = append(out, top.v)
			stack = stack[:len(stack)-1]
		}
	}
	return out
}

// PreOrder returns the vertices in pre-order (parents before children).
func (t *Rooted) PreOrder() []int {
	out := make([]int, 0, t.N())
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for i := len(t.children[v]) - 1; i >= 0; i-- {
			stack = append(stack, t.children[v][i])
		}
	}
	return out
}

// SubtreeSizes returns the number of vertices in each subtree.
func (t *Rooted) SubtreeSizes() []int {
	size := make([]int, t.N())
	for _, v := range t.PostOrder() {
		size[v] = 1
		for _, c := range t.children[v] {
			size[v] += size[c]
		}
	}
	return size
}

// IsAncestor reports whether a is an ancestor of v (inclusive: a vertex is
// its own ancestor).
func (t *Rooted) IsAncestor(a, v int) bool {
	for t.Depth[v] > t.Depth[a] {
		v = t.Parent[v]
	}
	return v == a
}
