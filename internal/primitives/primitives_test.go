package primitives

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

func TestBuildBFSTreeDepthsMatchDistances(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		root int
	}{
		{"cycle", graph.Cycle(11, graph.UnitWeights()), 0},
		{"grid", graph.Grid(4, 6, graph.UnitWeights()), 5},
		{"harary", graph.Harary(3, 16, graph.UnitWeights()), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr, m, err := BuildBFSTree(tc.g, tc.root)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.g.BFS(tc.root)
			for v := 0; v < tc.g.N(); v++ {
				if tr.Depth[v] != want.Dist[v] {
					t.Errorf("depth[%d] = %d, want %d", v, tr.Depth[v], want.Dist[v])
				}
			}
			// O(D) rounds: the flood reaches eccentricity(root) and quiesces.
			ecc := tc.g.Eccentricity(tc.root)
			if m.Rounds > ecc+3 {
				t.Errorf("rounds = %d, want <= ecc+3 = %d", m.Rounds, ecc+3)
			}
		})
	}
}

func TestBuildBFSTreeParallelExecutorMatches(t *testing.T) {
	g := graph.Grid(5, 5, graph.UnitWeights())
	seqTree, _, err := BuildBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	parTree, _, err := BuildBFSTree(g, 0, congest.WithExecutor(congest.ParallelExecutor{}))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if seqTree.Parent[v] != parTree.Parent[v] {
			t.Fatalf("executor changed BFS tree at vertex %d: %d vs %d",
				v, seqTree.Parent[v], parTree.Parent[v])
		}
	}
}

func TestAggregate(t *testing.T) {
	g := graph.Grid(4, 4, graph.UnitWeights())
	tr, _, err := BuildBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, g.N())
	var wantSum int64
	wantMin := int64(1 << 60)
	wantMax := int64(-1 << 60)
	rng := rand.New(rand.NewSource(1))
	for v := range values {
		values[v] = rng.Int63n(1000) - 500
		wantSum += values[v]
		if values[v] < wantMin {
			wantMin = values[v]
		}
		if values[v] > wantMax {
			wantMax = values[v]
		}
	}
	for _, tc := range []struct {
		name string
		op   AggOp
		want int64
	}{
		{"sum", Sum, wantSum},
		{"min", Min, wantMin},
		{"max", Max, wantMax},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, m, err := Aggregate(g, tr, values, tc.op)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("aggregate = %d, want %d", got, tc.want)
			}
			if m.Rounds > tr.Height()+3 {
				t.Errorf("rounds = %d, want <= height+3 = %d", m.Rounds, tr.Height()+3)
			}
		})
	}
}

func TestBroadcastValue(t *testing.T) {
	g := graph.Cycle(9, graph.UnitWeights())
	tr, _, err := BuildBFSTree(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, m, err := BroadcastValue(g, tr, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range got {
		if x != 42 {
			t.Errorf("vertex %d got %d, want 42", v, x)
		}
	}
	if m.Rounds > tr.Height()+3 {
		t.Errorf("rounds = %d", m.Rounds)
	}
}

func TestUpcastCollectsDistinctItems(t *testing.T) {
	g := graph.Grid(5, 5, graph.UnitWeights())
	tr, _, err := BuildBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	items := make([][]int64, g.N())
	rng := rand.New(rand.NewSource(2))
	want := map[int64]bool{}
	for v := range items {
		for j := 0; j < rng.Intn(4); j++ {
			x := int64(rng.Intn(30))
			items[v] = append(items[v], x)
			want[x] = true
		}
	}
	got, m, err := Upcast(g, tr, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct items, want %d", len(got), len(want))
	}
	for _, x := range got {
		if !want[x] {
			t.Errorf("unexpected item %d", x)
		}
	}
	// Pipelining bound: height + ℓ + O(1).
	if m.Rounds > tr.Height()+len(want)+3 {
		t.Errorf("rounds = %d, want <= h+ℓ+3 = %d", m.Rounds, tr.Height()+len(want)+3)
	}
}

func TestUpcastPipeliningScalesLinearly(t *testing.T) {
	// With ℓ items all at one deep leaf, rounds ≈ depth + ℓ, not depth·ℓ.
	g := graph.Grid(2, 30, graph.UnitWeights())
	tr, _, err := BuildBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	deepest := 0
	for v := 0; v < g.N(); v++ {
		if tr.Depth[v] > tr.Depth[deepest] {
			deepest = v
		}
	}
	items := make([][]int64, g.N())
	const l = 20
	for j := int64(0); j < l; j++ {
		items[deepest] = append(items[deepest], j)
	}
	_, m, err := Upcast(g, tr, items)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds > tr.Depth[deepest]+l+3 {
		t.Errorf("rounds = %d, want <= depth+ℓ+3 = %d (pipelining broken)",
			m.Rounds, tr.Depth[deepest]+l+3)
	}
}

func TestElectLeader(t *testing.T) {
	for _, exec := range []congest.Executor{congest.SequentialExecutor{}, congest.ParallelExecutor{}} {
		g := graph.Grid(4, 7, graph.UnitWeights())
		leader, m, err := ElectLeader(g, congest.WithExecutor(exec))
		if err != nil {
			t.Fatal(err)
		}
		if leader != 0 {
			t.Fatalf("leader = %d, want 0", leader)
		}
		if d := g.Diameter(); m.Rounds > d+3 {
			t.Errorf("rounds = %d, want <= D+3 = %d", m.Rounds, d+3)
		}
	}
}
