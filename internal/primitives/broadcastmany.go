package primitives

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/tree"
)

const kindBcastMany int8 = 30

// bcastManyProgram pipelines a list of items from the root down a tree: in
// every round each vertex forwards to its children the next item it has not
// yet forwarded. Classic O(height + ℓ) pipelining.
type bcastManyProgram struct {
	tr     *tree.Rooted
	buf    []int64 // items known, in arrival order
	sent   int     // prefix of buf already forwarded
	expect int     // total items (known statically; termination condition)
}

func (p *bcastManyProgram) Init(ctx *congest.Context) {
	p.step(ctx)
}

func (p *bcastManyProgram) step(ctx *congest.Context) {
	if p.sent < len(p.buf) {
		item := p.buf[p.sent]
		p.sent++
		for _, c := range p.tr.Children(ctx.Node()) {
			ctx.SendTo(c, congest.Payload{Kind: kindBcastMany, A: item})
		}
	}
}

func (p *bcastManyProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		if m.Kind == kindBcastMany {
			p.buf = append(p.buf, m.A)
		}
	}
	p.step(ctx)
	return len(p.buf) == p.expect && p.sent == len(p.buf)
}

// BroadcastMany delivers all items (initially at the root) to every vertex
// by pipelined tree broadcast in height + ℓ + O(1) rounds. Returns the
// items as received at each vertex (in pipeline order, equal to the input
// order).
func BroadcastMany(g *graph.Graph, tr *tree.Rooted, items []int64) ([][]int64, congest.Metrics, error) {
	progs := make([]*bcastManyProgram, g.N())
	net := congest.NewNetwork(g, func(v int) congest.Program {
		p := &bcastManyProgram{tr: tr, expect: len(items)}
		if v == tr.Root {
			p.buf = append(p.buf, items...)
		}
		progs[v] = p
		return p
	})
	m, err := net.Run(tr.Height() + len(items) + 3)
	if err != nil {
		return nil, m, fmt.Errorf("primitives: BroadcastMany did not quiesce: %w", err)
	}
	out := make([][]int64, g.N())
	for v := range out {
		out[v] = progs[v].buf
	}
	return out, m, nil
}
