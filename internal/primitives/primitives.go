// Package primitives implements the standard CONGEST building blocks the
// paper invokes ("we construct a BFS tree with root r in O(D) rounds [29]",
// "we can distribute ℓ different messages ... in O(D+ℓ) rounds using
// standard techniques") as genuine message-passing programs on the
// simulator: BFS-tree construction, tree aggregation (convergecast),
// tree broadcast, pipelined upcast of ℓ distinct items, and min-ID flooding.
//
//kecss:deterministic
package primitives

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/tree"
)

// message kinds used by the programs in this package.
const (
	kindBFSExplore int8 = iota + 1
	kindAggValue
	kindBcastValue
	kindUpcastItem
	kindMinID
)

// ---------------------------------------------------------------------------
// BFS tree construction: O(D) rounds.
// ---------------------------------------------------------------------------

type bfsProgram struct {
	root       int
	joined     bool
	dist       int64
	parent     int
	parentEdge int
	sent       bool
}

func (b *bfsProgram) Init(ctx *congest.Context) {
	b.parent = -1
	b.parentEdge = -1
	if ctx.Node() == b.root {
		b.joined = true
		b.sent = true
		ctx.Broadcast(congest.Payload{Kind: kindBFSExplore, A: 0})
	}
}

func (b *bfsProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	if !b.joined {
		best := -1
		for i, m := range inbox {
			if m.Kind != kindBFSExplore {
				continue
			}
			if best == -1 || m.Edge < inbox[best].Edge {
				best = i
			}
		}
		if best != -1 {
			m := inbox[best]
			b.joined = true
			b.dist = m.A + 1
			b.parent = m.From
			b.parentEdge = m.Edge
		}
	}
	if b.joined && !b.sent {
		b.sent = true
		ctx.Broadcast(congest.Payload{Kind: kindBFSExplore, A: b.dist})
	}
	return b.joined
}

// ErrBFSNotSpanning reports that a BFS finished without reaching every
// vertex, i.e. the graph is disconnected. Callers that treat "disconnected"
// as a verdict rather than a failure (verify.Connectivity) test for it with
// errors.Is; every other BuildBFSTree error still indicates a genuine bug.
var ErrBFSNotSpanning = errors.New("BFS tree does not span the graph")

// BuildBFSTree constructs a BFS tree rooted at root by running the
// distributed BFS program, returning the tree and the simulation metrics.
// On a disconnected graph the returned error wraps ErrBFSNotSpanning and
// the metrics still report the rounds the failed BFS consumed.
func BuildBFSTree(g *graph.Graph, root int, opts ...congest.Option) (*tree.Rooted, congest.Metrics, error) {
	net := congest.NewNetwork(g, func(int) congest.Program {
		return &bfsProgram{root: root}
	}, opts...)
	m, runErr := net.Run(g.N() + 2)
	// Distinguish "some vertices never joined" (disconnected input — the
	// exploration wave cannot reach them, so the network never quiesces and
	// runErr fires) from a genuine non-termination bug: inspect the joined
	// flags directly instead of inferring from downstream tree validation.
	unreached := 0
	for v := 0; v < g.N(); v++ {
		if !net.Program(v).(*bfsProgram).joined {
			unreached++
		}
	}
	if unreached > 0 {
		return nil, m, fmt.Errorf("primitives: BFS from %d left %d of %d vertices unreached: %w",
			root, unreached, g.N(), ErrBFSNotSpanning)
	}
	if runErr != nil {
		return nil, m, fmt.Errorf("primitives: BFS did not quiesce: %w", runErr)
	}
	parent := make([]int, g.N())
	parentEdge := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		p := net.Program(v).(*bfsProgram)
		parent[v] = p.parent
		parentEdge[v] = p.parentEdge
	}
	tr, err := tree.FromParents(root, parent, parentEdge)
	if err != nil {
		return nil, m, fmt.Errorf("primitives: BFS produced invalid tree: %w", err)
	}
	return tr, m, nil
}

// ---------------------------------------------------------------------------
// Convergecast (tree aggregation): O(height) rounds.
// ---------------------------------------------------------------------------

// AggOp combines two O(log n)-bit values. It must be associative and
// commutative (sum, min, max, ...).
type AggOp func(a, b int64) int64

// Sum, Min and Max are the standard aggregation operators.
func Sum(a, b int64) int64 { return a + b }

// Min returns the smaller argument.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger argument.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type aggProgram struct {
	tr      *tree.Rooted
	op      AggOp
	acc     int64
	pending int // children not yet heard from
	sentUp  bool
	result  int64 // valid at root once done
}

func (a *aggProgram) Init(ctx *congest.Context) {
	a.pending = len(a.tr.Children(ctx.Node()))
}

func (a *aggProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		if m.Kind == kindAggValue {
			a.acc = a.op(a.acc, m.A)
			a.pending--
		}
	}
	v := ctx.Node()
	if a.pending == 0 && !a.sentUp {
		a.sentUp = true
		if v == a.tr.Root {
			a.result = a.acc
		} else {
			ctx.Send(a.tr.ParentEdge[v], congest.Payload{Kind: kindAggValue, A: a.acc})
		}
	}
	return a.sentUp
}

// Aggregate convergecasts values[v] over tr with op, returning the aggregate
// at the root. Height+O(1) rounds.
func Aggregate(g *graph.Graph, tr *tree.Rooted, values []int64, op AggOp) (int64, congest.Metrics, error) {
	net := congest.NewNetwork(g, func(v int) congest.Program {
		return &aggProgram{tr: tr, op: op, acc: values[v]}
	})
	m, err := net.Run(tr.Height() + 3)
	if err != nil {
		return 0, m, fmt.Errorf("primitives: aggregate did not quiesce: %w", err)
	}
	return net.Program(tr.Root).(*aggProgram).result, m, nil
}

// ---------------------------------------------------------------------------
// Tree broadcast: O(height) rounds.
// ---------------------------------------------------------------------------

type bcastProgram struct {
	tr    *tree.Rooted
	value int64
	have  bool
	sent  bool
}

func (b *bcastProgram) Init(ctx *congest.Context) {
	if ctx.Node() == b.tr.Root {
		b.have = true
		b.forward(ctx)
	}
}

func (b *bcastProgram) forward(ctx *congest.Context) {
	b.sent = true
	for _, c := range b.tr.Children(ctx.Node()) {
		ctx.SendTo(c, congest.Payload{Kind: kindBcastValue, A: b.value})
	}
}

func (b *bcastProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		if m.Kind == kindBcastValue && !b.have {
			b.have = true
			b.value = m.A
		}
	}
	if b.have && !b.sent {
		b.forward(ctx)
	}
	return b.have
}

// BroadcastValue sends value from the root down tr; every vertex learns it.
// Returns the value as received at each vertex.
func BroadcastValue(g *graph.Graph, tr *tree.Rooted, value int64) ([]int64, congest.Metrics, error) {
	net := congest.NewNetwork(g, func(v int) congest.Program {
		p := &bcastProgram{tr: tr}
		if v == tr.Root {
			p.value = value
		}
		return p
	})
	m, err := net.Run(tr.Height() + 3)
	if err != nil {
		return nil, m, fmt.Errorf("primitives: broadcast did not quiesce: %w", err)
	}
	out := make([]int64, g.N())
	for v := range out {
		out[v] = net.Program(v).(*bcastProgram).value
	}
	return out, m, nil
}

// ---------------------------------------------------------------------------
// Pipelined upcast: root learns all distinct items in O(height + ℓ) rounds.
// ---------------------------------------------------------------------------

type upcastProgram struct {
	tr *tree.Rooted
	// pending items to forward up, kept sorted ascending; known tracks items
	// already seen (so duplicates from different subtrees are sent once).
	pending []int64
	known   map[int64]bool
	root    bool
}

func (u *upcastProgram) Init(ctx *congest.Context) {
	u.root = ctx.Node() == u.tr.Root
	sort.Slice(u.pending, func(i, j int) bool { return u.pending[i] < u.pending[j] })
}

func (u *upcastProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		if m.Kind != kindUpcastItem {
			continue
		}
		if !u.known[m.A] {
			u.known[m.A] = true
			u.insert(m.A)
		}
	}
	if !u.root && len(u.pending) > 0 {
		item := u.pending[0]
		u.pending = u.pending[1:]
		ctx.Send(u.tr.ParentEdge[ctx.Node()], congest.Payload{Kind: kindUpcastItem, A: item})
	}
	return u.root || len(u.pending) == 0
}

func (u *upcastProgram) insert(x int64) {
	i := sort.Search(len(u.pending), func(i int) bool { return u.pending[i] >= x })
	u.pending = append(u.pending, 0)
	copy(u.pending[i+1:], u.pending[i:])
	u.pending[i] = x
}

// Upcast sends every distinct item in items[v] (for all v) to the root via
// pipelined convergecast. The classic pipelining argument gives height + ℓ
// rounds, where ℓ is the number of distinct items. Returns the distinct
// items collected at the root, sorted.
func Upcast(g *graph.Graph, tr *tree.Rooted, items [][]int64) ([]int64, congest.Metrics, error) {
	distinct := make(map[int64]bool)
	for _, list := range items {
		for _, x := range list {
			distinct[x] = true
		}
	}
	net := congest.NewNetwork(g, func(v int) congest.Program {
		known := make(map[int64]bool, len(items[v]))
		var pending []int64
		for _, x := range items[v] {
			if !known[x] {
				known[x] = true
				pending = append(pending, x)
			}
		}
		return &upcastProgram{tr: tr, pending: pending, known: known}
	})
	m, err := net.Run(tr.Height() + len(distinct) + 3)
	if err != nil {
		return nil, m, fmt.Errorf("primitives: upcast did not quiesce: %w", err)
	}
	rp := net.Program(tr.Root).(*upcastProgram)
	out := make([]int64, 0, len(rp.known))
	for x := range rp.known {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, m, nil
}

// ---------------------------------------------------------------------------
// Min-ID flooding (leader election): O(D) rounds by quiescence.
// ---------------------------------------------------------------------------

type minIDProgram struct {
	best      int64
	announced int64
}

func (p *minIDProgram) Init(ctx *congest.Context) {
	p.best = int64(ctx.Node())
	p.announced = -1
}

func (p *minIDProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	improved := false
	for _, m := range inbox {
		if m.Kind == kindMinID && m.A < p.best {
			p.best = m.A
			improved = true
		}
	}
	if p.announced != p.best && (improved || p.announced == -1) {
		p.announced = p.best
		ctx.Broadcast(congest.Payload{Kind: kindMinID, A: p.best})
		return false
	}
	return true
}

// ElectLeader floods vertex IDs until every vertex knows the global minimum
// (the paper's choice of BFS root). Terminates by quiescence in O(D) rounds.
func ElectLeader(g *graph.Graph, opts ...congest.Option) (int, congest.Metrics, error) {
	net := congest.NewNetwork(g, func(int) congest.Program { return &minIDProgram{} }, opts...)
	m, err := net.Run(2*g.N() + 4)
	if err != nil {
		return -1, m, fmt.Errorf("primitives: leader election did not quiesce: %w", err)
	}
	leader := net.Program(0).(*minIDProgram).best
	for v := 0; v < g.N(); v++ {
		if got := net.Program(v).(*minIDProgram).best; got != leader {
			return -1, m, fmt.Errorf("primitives: leader disagreement at vertex %d: %d vs %d: %w",
				v, got, leader, ErrNoGlobalLeader)
		}
	}
	return int(leader), m, nil
}

// ErrNoGlobalLeader reports that min-ID flooding quiesced with different
// components holding different minima — which happens exactly when the graph
// is disconnected. Like ErrBFSNotSpanning, callers verifying connectivity
// treat it as a verdict, not a failure.
var ErrNoGlobalLeader = errors.New("leader election disagreed (graph disconnected)")
