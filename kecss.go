// Package kecss is a reproduction of "Distributed Approximation of Minimum
// k-edge-connected Spanning Subgraphs" (Michal Dory, PODC 2018) as a Go
// library: distributed CONGEST-model approximation algorithms for the
// minimum weight k-edge-connected spanning subgraph (k-ECSS) problem, built
// on a faithful CONGEST simulator.
//
// The three headline algorithms are exposed directly:
//
//   - Solve2ECSS — weighted 2-ECSS: MST + distributed weighted tree
//     augmentation (Theorem 1.1, O(log n)-approximation in
//     O((D+√n)·log²n) rounds w.h.p.);
//   - SolveKECSS — weighted k-ECSS by repeated Aug_i covering steps
//     (Theorem 1.2, O(k·log n) expected approximation in
//     O(k(D·log³n + n)) rounds);
//   - Solve3ECSSUnweighted — unweighted 3-ECSS via cycle space sampling
//     (Theorem 1.3, O(log n) expected approximation in O(D·log³n) rounds);
//   - SolveTAP — the weighted tree augmentation subroutine on its own
//     (Theorem 3.12).
//
// Graphs are built with NewGraph/AddEdge or the generator helpers. All
// randomness is controlled by WithSeed for reproducibility; round counts,
// iteration counts and approximation diagnostics are in the result structs.
//
// # Concurrency
//
// The package-level solvers (Solve2ECSS, SolveKECSS, Solve3ECSSUnweighted,
// Solve3ECSSWeighted, SolveTAP) are goroutine-safe with respect to each
// other and to themselves: each call derives its own random stream from
// WithSeed and touches no shared mutable state, so concurrent calls — even
// on the same *Graph — are race-free. A *Graph itself is safe for
// concurrent readers only; do not AddEdge while any solver is running on it.
//
// What is NOT goroutine-safe is sharing solver-internal state across calls
// yourself: a *rand.Rand, a congest.NetworkArena, or a result struct being
// mutated. The public API never hands these out for sharing — seeds go in,
// results come out — so the only way to race is through the internal
// packages.
//
// For solving many instances, Pool runs batches on a fixed set of workers,
// each with its own recycled simulation arena and a per-task RNG derived as
// baseSeed XOR taskIndex, making batch results byte-identical regardless of
// worker count or scheduling. See NewPool, Pool.Sweep and the batch
// helpers; examples/fleet is a worked example. Pool.Close is idempotent and
// may race with sweeps: work submitted after Close begins reports
// ErrPoolClosed instead of running.
//
// # Serving
//
// The solver stack is also exposed as an HTTP service (cmd/kecss-serve,
// implemented in internal/server): POST /v1/solve and the async /v1/jobs
// endpoints accept a graph in the canonical wire form of internal/wire plus
// the solver spec (solver name, k, seed, option overrides). Because every
// solve is deterministic in (graph, spec), the service content-addresses
// requests with wire.Digest and answers repeats from an LRU cache with
// byte-identical results; cmd/kecss-load replays scenario families against
// a server and verifies served results against direct in-process calls.
package kecss

import (
	"math/rand"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/graph"
	"repro/internal/tap"
	"repro/internal/tree"
)

// Graph is an undirected weighted multigraph on vertices 0..N-1.
// See NewGraph.
type Graph = graph.Graph

// Edge is an undirected weighted edge of a Graph.
type Edge = graph.Edge

// TwoECSSResult is the outcome of Solve2ECSS.
type TwoECSSResult = core.TwoECSSResult

// KECSSResult is the outcome of SolveKECSS.
type KECSSResult = core.KECSSResult

// ThreeECSSResult is the outcome of Solve3ECSSUnweighted.
type ThreeECSSResult = core.ThreeECSSResult

// TAPResult is the outcome of SolveTAP.
type TAPResult = tap.Result

// NewGraph returns an empty graph on n vertices. Add edges with
// (*Graph).AddEdge(u, v, w); weights must be non-negative integers
// (polynomial in n, per the paper's model, so they fit in O(log n)-bit
// messages).
func NewGraph(n int) *Graph { return graph.New(n) }

type config struct {
	seed            int64
	seedSet         bool
	executor        congest.Executor
	simulateMST     bool
	voteDenom       int64
	labelBits       int
	phaseLen        int
	cutEnumWorkers  int
	cutEnumTrialFac int
	refLabeling     bool
	phase           core.PhaseObserver
}

// Option configures the solvers.
type Option func(*config)

// WithSeed fixes the random seed, making every solver run reproducible.
// Without it, seed 1 is used (the library never draws entropy implicitly).
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed; c.seedSet = true }
}

// WithParallelExecutor runs the CONGEST simulations on a persistent worker
// pool (chunked vertex ranges, one worker per CPU) instead of the
// deterministic sequential executor. Results are identical; wall-clock
// behaviour differs (see the executor ablation benchmark).
func WithParallelExecutor() Option {
	return func(c *config) { c.executor = congest.ParallelExecutor{} }
}

// WithShardedExecutor runs the CONGEST simulations on the same persistent
// worker pool as WithParallelExecutor, but with one contiguous vertex shard
// per worker — friendlier to caches when per-node work is uniform. Results
// are identical to the other executors.
func WithShardedExecutor() Option {
	return func(c *config) { c.executor = congest.ShardedExecutor{} }
}

// WithSimulatedMST computes MSTs by the genuinely message-passing Borůvka
// algorithm on the simulator (measured rounds) instead of the sequential
// oracle with the Kutten–Peleg round bound charged.
func WithSimulatedMST() Option {
	return func(c *config) { c.simulateMST = true }
}

// WithVoteDenominator overrides the TAP acceptance threshold |Ce|/d
// (paper: 8). Only affects Solve2ECSS and SolveTAP.
func WithVoteDenominator(d int64) Option {
	return func(c *config) { c.voteDenom = d }
}

// WithLabelBits overrides the cycle-space label width b (default 48).
// Only affects Solve3ECSSUnweighted.
func WithLabelBits(b int) Option {
	return func(c *config) { c.labelBits = b }
}

// WithPhaseLength overrides the M in the Aug_k activation schedule
// "double p every M·log n iterations" (default 1).
func WithPhaseLength(m int) Option {
	return func(c *config) { c.phaseLen = m }
}

// WithReferenceLabeling makes the 3-ECSS solvers re-run the full
// distributed cycle-space label scan over H ∪ A on every iteration of the
// §5 augmentation loop — the retained from-scratch path — instead of the
// default incremental engine, which labels the base once and then only
// XORs fresh labels for newly activated edges along their tree paths.
// Results are identical either way (the equivalence corpus pins this);
// only wall-clock and the measured-vs-charged round split differ. Only
// affects Solve3ECSSUnweighted and Solve3ECSSWeighted.
func WithReferenceLabeling() Option {
	return func(c *config) { c.refLabeling = true }
}

// WithCutEnumWorkers spreads the Karger–Stein min-cut enumeration trials
// inside SolveKECSS's Aug levels (sizes >= 3) over n goroutines. Results
// are byte-identical at any setting — trial t always draws from its own
// RNG seeded baseSeed XOR t and trials merge in trial order — so this
// trades only wall-clock, never reproducibility. 0 or 1 keeps the
// enumeration on the calling goroutine (the default; pool sweeps are
// already parallel across tasks and should not oversubscribe).
func WithCutEnumWorkers(n int) Option {
	return func(c *config) { c.cutEnumWorkers = n }
}

// WithCutEnumTrialFactor multiplies the enumeration's default Θ(log²n)
// Karger–Stein trial count (default 1). The default is chosen for w.h.p.
// completeness; raise it to buy an even lower cut-miss probability with
// CPU.
func WithCutEnumTrialFactor(f int) Option {
	return func(c *config) { c.cutEnumTrialFac = f }
}

// PhaseEvent reports one completed solver phase (validation, MST, base
// labeling, cut enumeration, augmentation, correction) with its wall-clock
// duration and its cost in the paper's CONGEST measure (charged/measured
// rounds, and simulator-measured messages where the phase ran real message
// passing). See core.PhaseEvent for the per-solver phase lists.
type PhaseEvent = core.PhaseEvent

// PhaseObserver receives PhaseEvents during a solve. See WithPhaseObserver.
type PhaseObserver = core.PhaseObserver

// WithPhaseObserver installs a per-phase telemetry hook: fn is called
// synchronously on the solving goroutine once per completed phase. It must
// be cheap and must not retain the event past the call. The hook observes
// only — results and round accounting are byte-identical with or without
// it — and a nil fn (the default) costs nothing: solvers check the
// observer for nil before capturing any timestamps, so the disabled hook
// adds no allocations to the hot paths.
func WithPhaseObserver(fn PhaseObserver) Option {
	return func(c *config) { c.phase = fn }
}

func buildConfig(opts []Option) config {
	c := config{seed: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) rng() *rand.Rand { return rand.New(rand.NewSource(c.seed)) }

// solveEnv is the per-call execution state a solver run gets on top of its
// config: its private random stream plus, for pool workers, the worker's
// recycled arena and the marker that the graph was already validated. It
// lives for exactly one solve call on the worker that owns the arenas.
//
//kecss:arena-owner
type solveEnv struct {
	rng            *rand.Rand
	arena          *congest.NetworkArena
	labels         *cycles.Arena
	skipValidation bool
}

func (c config) serialEnv() solveEnv { return solveEnv{rng: c.rng()} }

func (c config) twoOpts(env solveEnv) core.TwoECSSOptions {
	return core.TwoECSSOptions{
		Rng:         env.rng,
		TAP:         tap.Options{VoteDenom: c.voteDenom},
		SimulateMST: c.simulateMST,
		Executor:    c.executor,
		Arena:       env.arena,
		Phase:       c.phase,
	}
}

func (c config) cutEnum() core.CutEnumOptions {
	return core.CutEnumOptions{Workers: c.cutEnumWorkers, TrialFactor: c.cutEnumTrialFac}
}

func (c config) kecssOpts(env solveEnv) core.KECSSOptions {
	return core.KECSSOptions{
		Rng:            env.rng,
		PhaseLen:       c.phaseLen,
		SimulateMST:    c.simulateMST,
		Executor:       c.executor,
		Arena:          env.arena,
		SkipValidation: env.skipValidation,
		CutEnum:        c.cutEnum(),
		Phase:          c.phase,
	}
}

func (c config) threeOpts(env solveEnv) core.ThreeECSSOptions {
	return core.ThreeECSSOptions{
		Rng:               env.rng,
		LabelBits:         c.labelBits,
		PhaseLen:          c.phaseLen,
		Executor:          c.executor,
		Arena:             env.arena,
		LabelArena:        env.labels,
		ReferenceLabeling: c.refLabeling,
		SkipValidation:    env.skipValidation,
		CutEnum:           c.cutEnum(),
		Phase:             c.phase,
	}
}

// Solve2ECSS computes an O(log n)-approximate minimum weight
// 2-edge-connected spanning subgraph of g (Theorem 1.1). g must be
// 2-edge-connected.
func Solve2ECSS(g *Graph, opts ...Option) (*TwoECSSResult, error) {
	c := buildConfig(opts)
	return core.Solve2ECSS(g, c.twoOpts(c.serialEnv()))
}

// SolveKECSS computes an O(k·log n)-expected-approximate minimum weight
// k-edge-connected spanning subgraph of g (Theorem 1.2). g must be
// k-edge-connected.
func SolveKECSS(g *Graph, k int, opts ...Option) (*KECSSResult, error) {
	c := buildConfig(opts)
	return core.SolveKECSS(g, k, c.kecssOpts(c.serialEnv()))
}

// Solve3ECSSUnweighted computes an O(log n)-expected-approximate minimum
// size 3-edge-connected spanning subgraph of g (Theorem 1.3), ignoring edge
// weights. g must be 3-edge-connected.
func Solve3ECSSUnweighted(g *Graph, opts ...Option) (*ThreeECSSResult, error) {
	c := buildConfig(opts)
	return core.Solve3ECSSUnweighted(g, c.threeOpts(c.serialEnv()))
}

// Solve3ECSSWeighted computes an O(log n)-expected-approximate minimum
// weight 3-edge-connected spanning subgraph of g (the §5.4 weighted
// variant: weighted 2-ECSS base + weighted cycle-space augmentation).
// Slower than the unweighted variant — per-iteration cost follows the
// spanning-tree height of the weighted base rather than D.
func Solve3ECSSWeighted(g *Graph, opts ...Option) (*ThreeECSSResult, error) {
	c := buildConfig(opts)
	return core.Solve3ECSSWeighted(g, c.threeOpts(c.serialEnv()))
}

// SolveTAP augments the spanning tree given by treeEdges (graph edge IDs)
// to 2-edge-connectivity with a guaranteed O(log n)-approximate edge set
// (Theorem 3.12). root selects the tree root (any vertex).
func SolveTAP(g *Graph, treeEdges []int, root int, opts ...Option) (*TAPResult, error) {
	c := buildConfig(opts)
	tr, err := tree.FromEdges(g, treeEdges, root)
	if err != nil {
		return nil, err
	}
	return tap.Augment(g, tr, tap.Options{Rng: c.rng(), VoteDenom: c.voteDenom})
}

// VerifyKEdgeConnected reports whether the subgraph of g induced by the
// given edge IDs spans g and is k-edge-connected — the acceptance check for
// every solver's output.
func VerifyKEdgeConnected(g *Graph, edges []int, k int) bool {
	sub, _ := g.SubgraphOf(edges)
	return sub.IsKEdgeConnected(k)
}
