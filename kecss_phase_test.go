package kecss

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// collectPhases runs solve twice — once bare, once with a phase observer —
// and asserts the observer changed nothing about the result.
func collectPhases(t *testing.T, solve func(opts ...Option) (edges []int, weight int64, rounds int64, err error)) []PhaseEvent {
	t.Helper()
	bareEdges, bareWeight, bareRounds, err := solve()
	if err != nil {
		t.Fatal(err)
	}
	var events []PhaseEvent
	obs := func(ev PhaseEvent) { events = append(events, ev) }
	edges, weight, rounds, err := solve(WithPhaseObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if weight != bareWeight || rounds != bareRounds || len(edges) != len(bareEdges) {
		t.Fatalf("phase observer changed the result: weight %d!=%d rounds %d!=%d edges %d!=%d",
			weight, bareWeight, rounds, bareRounds, len(edges), len(bareEdges))
	}
	return events
}

func phaseSet(events []PhaseEvent) map[string]int {
	m := map[string]int{}
	for _, ev := range events {
		m[ev.Phase]++
	}
	return m
}

func TestPhaseObserver2ECSS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomKConnected(30, 2, 40, rng, graph.RandomWeights(rng, 50))
	events := collectPhases(t, func(opts ...Option) ([]int, int64, int64, error) {
		res, err := Solve2ECSS(g, append([]Option{WithSeed(7)}, opts...)...)
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Edges, res.Weight, res.Rounds, nil
	})
	got := phaseSet(events)
	if got["mst"] != 1 || got["tap"] != 1 {
		t.Fatalf("want one mst and one tap phase, got %v", got)
	}
	for _, ev := range events {
		if ev.Rounds <= 0 {
			t.Fatalf("phase %q carries no rounds: %+v", ev.Phase, ev)
		}
		if ev.Duration < 0 || ev.Start.IsZero() {
			t.Fatalf("phase %q has bad timing: %+v", ev.Phase, ev)
		}
	}
}

func TestPhaseObserverKECSS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomKConnected(18, 3, 20, rng, graph.RandomWeights(rng, 20))
	events := collectPhases(t, func(opts ...Option) ([]int, int64, int64, error) {
		res, err := SolveKECSS(g, 3, append([]Option{WithSeed(5)}, opts...)...)
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Edges, res.Weight, res.Rounds, nil
	})
	got := phaseSet(events)
	if got["validate"] != 1 || got["mst"] != 1 {
		t.Fatalf("want validate and mst phases, got %v", got)
	}
	// Levels 2 and 3 each enumerate cuts and augment.
	if got["cut-enum"] != 2 || got["augment"] != 2 {
		t.Fatalf("want 2 cut-enum and 2 augment phases for k=3, got %v", got)
	}
	for _, ev := range events {
		if ev.Phase == "augment" && ev.Level < 2 {
			t.Fatalf("augment phase missing its level: %+v", ev)
		}
	}
}

func TestPhaseObserver3ECSS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomKConnected(16, 3, 16, rng, graph.UnitWeights())
	events := collectPhases(t, func(opts ...Option) ([]int, int64, int64, error) {
		res, err := Solve3ECSSUnweighted(g, append([]Option{WithSeed(11), WithLabelBits(40)}, opts...)...)
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Edges, res.Weight, res.Rounds, nil
	})
	got := phaseSet(events)
	for _, want := range []string{"validate", "base", "base-label", "augment", "correction"} {
		if got[want] != 1 {
			t.Fatalf("want one %q phase, got %v", want, got)
		}
	}
	for _, ev := range events {
		if ev.Phase == "base-label" && (ev.Rounds <= 0 || ev.Messages <= 0) {
			t.Fatalf("base-label should carry measured rounds and messages: %+v", ev)
		}
	}
}

// TestPhaseObserverThroughPool pins that a per-task observer option reaches
// the solver on pool sweeps (the serving agents rely on this), and that the
// pool's pre-validation suppresses the validate phase rather than running
// the check twice.
func TestPhaseObserverThroughPool(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomKConnected(16, 3, 16, rng, graph.UnitWeights())
	p := NewPool(2)
	defer p.Close()
	var events []PhaseEvent
	obs := func(ev PhaseEvent) { events = append(events, ev) }
	res := p.Sweep([]Task{{
		Graph:  g,
		Solver: Solver3ECSSUnweighted,
		Opts:   []Option{WithSeed(11), WithLabelBits(40), WithPhaseObserver(obs)},
	}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	got := phaseSet(events)
	if got["validate"] != 0 {
		t.Fatalf("pool sweeps pre-validate; solver should not emit validate, got %v", got)
	}
	if got["base-label"] != 1 || got["augment"] != 1 {
		t.Fatalf("phase observer did not reach the pooled solver: %v", got)
	}
}
