// Backbone: design a cheap fault-tolerant backbone for a random geometric
// network (the classic network-design motivation of the paper's
// introduction). Compares the MST (cheapest connected backbone, zero fault
// tolerance) with the 2-ECSS backbone (Theorem 1.1) and demonstrates the
// difference under single-link failures.
package main

import (
	"fmt"
	"log"
	"math/rand"

	kecss "repro"
	"repro/internal/graph"
	"repro/internal/mst"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	g := graph.RandomGeometric(150, 0.18, 2, rng)
	fmt.Printf("geometric network: %d nodes, %d candidate links, diameter≈%d\n",
		g.N(), g.M(), g.DiameterEstimate())

	mstIDs, mstW := mst.Kruskal(g)
	res, err := kecss.Solve2ECSS(g, kecss.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nMST backbone:    %4d links, cost %6d — fault tolerance: none\n", len(mstIDs), mstW)
	fmt.Printf("2-ECSS backbone: %4d links, cost %6d — survives any single failure\n",
		len(res.Edges), res.Weight)
	fmt.Printf("cost overhead vs MST: %.2fx (guarantee: O(log n) of the optimal 2-ECSS)\n",
		float64(res.Weight)/float64(mstW))

	// Failure drill: kill each backbone link in turn and count outages.
	outages := func(backbone []int) int {
		count := 0
		for i := range backbone {
			rest := make([]int, 0, len(backbone)-1)
			rest = append(rest, backbone[:i]...)
			rest = append(rest, backbone[i+1:]...)
			sub, _ := g.SubgraphOf(rest)
			if !sub.Connected() {
				count++
			}
		}
		return count
	}
	fmt.Printf("\nfailure drill (remove each backbone link once):\n")
	fmt.Printf("  MST:    %d/%d failures cause an outage\n", outages(mstIDs), len(mstIDs))
	fmt.Printf("  2-ECSS: %d/%d failures cause an outage\n", outages(res.Edges), len(res.Edges))
	fmt.Printf("\ndistributed cost: %d TAP iterations, %d CONGEST rounds\n",
		res.TAP.Iterations, res.Rounds)
}
