// Cutlabels reproduces Figure 2 of the paper: cycle-space labels on a small
// 2-edge-connected graph expose its cut pairs (edges sharing a label), and
// adding two more chords makes every label unique — no cut pairs, i.e. the
// graph becomes 3-edge-connected.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cycles"
	"repro/internal/graph"
	"repro/internal/tree"
)

func printLabels(g *graph.Graph, title string) *cycles.Labeling {
	tr, err := tree.FromBFS(g.BFS(0))
	if err != nil {
		log.Fatal(err)
	}
	l, err := cycles.ComputeLabels(g, tr, 16, rand.New(rand.NewSource(8)))
	if err != nil {
		log.Fatal(err)
	}
	inTree := tr.IsTreeEdge()
	fmt.Printf("\n%s (labels computed in %d CONGEST rounds):\n", title, l.Metrics.Rounds)
	for _, e := range g.Edges() {
		kind := "chord"
		if inTree[e.ID] {
			kind = "tree "
		}
		fmt.Printf("  %s edge %d–%d  φ = %04x\n", kind, e.U, e.V, l.Phi[e.ID])
	}
	pairs := l.CutPairs()
	if len(pairs) == 0 {
		fmt.Println("  no equal labels → no cut pairs → 3-edge-connected")
	}
	for _, p := range pairs {
		a, b := g.Edge(p.A), g.Edge(p.B)
		fmt.Printf("  cut pair: {%d–%d, %d–%d} (shared label %04x)\n",
			a.U, a.V, b.U, b.V, l.Phi[p.A])
	}
	return l
}

func main() {
	// Left side of Figure 2: tree + 3 chords, two cut pairs.
	g := graph.PaperFigure2Graph()
	printLabels(g, "Figure 2, left: 2-edge-connected graph with cut pairs")

	// Right side: two additional chords (touching the degree-2 vertices 0
	// and 5) kill all cut pairs.
	g2 := g.Clone()
	g2.AddEdge(0, 4, 1)
	g2.AddEdge(1, 5, 1)
	l := printLabels(g2, "Figure 2, right: two chords added")
	fmt.Printf("\n3-edge-connected by labels: %v, by exact check: %v\n",
		l.ThreeEdgeConnectedWith(), g2.IsKEdgeConnected(3))
}
