// Audit: given an existing network, run the distributed verification suite
// (§5: O(D)-round 2EC/3EC checks via cycle-space labels), and if the network
// is only 1-fault-tolerant, show the two upgrade paths this repository
// implements: a fault-tolerant MST (cheap, repairs after a failure) and a
// 2-ECSS backbone (survives the failure with no repair at all).
package main

import (
	"fmt"
	"log"
	"math/rand"

	kecss "repro"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/verify"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomKConnected(80, 2, 100, rng, graph.RandomWeights(rng, 200))
	fmt.Printf("network: %d nodes, %d links, diameter≈%d\n", g.N(), g.M(), g.DiameterEstimate())

	// Distributed audit.
	rep2, err := verify.TwoEdgeConnectivity(g, 48, rng)
	if err != nil {
		log.Fatal(err)
	}
	rep3, err := verify.ThreeEdgeConnectivity(g, 48, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed audit:\n")
	fmt.Printf("  survives any 1 link failure (2EC): %v  (%d rounds)\n", rep2.OK, rep2.Rounds)
	fmt.Printf("  survives any 2 link failures (3EC): %v  (%d rounds)\n", rep3.OK, rep3.Rounds)

	// Upgrade path 1: fault-tolerant MST — keep a spare per tree edge so a
	// post-failure MST is always on hand.
	ft, err := mst.FaultTolerantMST(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupgrade 1 — FT-MST (repair after failure):\n")
	fmt.Printf("  %d links (MST %d + %d replacements), weight %d\n",
		len(ft.Edges), len(ft.MSTEdges), len(ft.Edges)-len(ft.MSTEdges), g.WeightOf(ft.Edges))

	// Upgrade path 2: 2-ECSS backbone — no repair needed at all.
	res, err := kecss.Solve2ECSS(g, kecss.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupgrade 2 — 2-ECSS backbone (no repair needed):\n")
	fmt.Printf("  %d links, weight %d (MST alone: %d)\n", len(res.Edges), res.Weight, res.MSTWeight)

	// The difference under failure: FT-MST still disconnects until the
	// replacement is activated; the 2-ECSS never disconnects.
	fmt.Printf("\nunder a live failure of a backbone link:\n")
	fmt.Printf("  plain MST stays connected: %v\n", stillConnected(g, ft.MSTEdges))
	fmt.Printf("  2-ECSS stays connected:    %v\n", stillConnected(g, res.Edges))
}

// stillConnected reports whether removing each single edge from the given
// backbone always leaves it connected.
func stillConnected(g *graph.Graph, backbone []int) bool {
	for i := range backbone {
		rest := make([]int, 0, len(backbone)-1)
		rest = append(rest, backbone[:i]...)
		rest = append(rest, backbone[i+1:]...)
		sub, _ := g.SubgraphOf(rest)
		if !sub.Connected() {
			return false
		}
	}
	return true
}
