// Quickstart: build a small weighted graph, compute a 2-edge-connected
// spanning subgraph with the paper's algorithm, and verify it survives any
// single edge failure.
package main

import (
	"fmt"
	"log"

	kecss "repro"
)

func main() {
	// A ring of 6 sites with some cross links. Weights are link costs.
	g := kecss.NewGraph(6)
	type link struct {
		u, v int
		w    int64
	}
	links := []link{
		{0, 1, 4}, {1, 2, 3}, {2, 3, 5}, {3, 4, 2}, {4, 5, 6}, {5, 0, 4}, // ring
		{0, 3, 9}, {1, 4, 7}, {2, 5, 8}, // cross links
	}
	for _, l := range links {
		g.AddEdge(l.u, l.v, l.w)
	}

	res, err := kecss.Solve2ECSS(g, kecss.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input: %d sites, %d links, total cost %d\n", g.N(), g.M(), g.TotalWeight())
	fmt.Printf("2-ECSS backbone: %d links, cost %d (MST alone costs %d but dies on one failure)\n",
		len(res.Edges), res.Weight, res.MSTWeight)
	for _, id := range res.Edges {
		e := g.Edge(id)
		fmt.Printf("  keep link %d–%d (cost %d)\n", e.U, e.V, e.W)
	}
	fmt.Printf("survives any single link failure: %v\n",
		kecss.VerifyKEdgeConnected(g, res.Edges, 2))
}
