// Fleet: plan resilient backbones for a whole fleet of sites at once.
//
// An operator rarely has one topology: different regions have different
// shapes (a scale-free peering mesh, a geometric metro network, a fat-tree
// datacenter, a chain of offices). This demo builds one instance of each
// family, then uses kecss.Pool to sweep several independent solver trials
// per site in a single batch — each trial's RNG is derived from the task
// index, so the whole plan is reproducible at any worker count — and keeps
// the cheapest valid backbone per site.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	kecss "repro"
	"repro/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(2022))

	type site struct {
		name   string
		g      *graph.Graph
		solver kecss.Solver
		k      int
	}
	sites := []site{
		// A scale-free peering mesh: hubs with heavy tails (Chung–Lu).
		{"peering (chung-lu)", graph.ChungLu(150, 2.5, 6, 2, rng, graph.RandomWeights(rng, 100)), kecss.Solver2ECSS, 2},
		// A metro network: nodes scattered in the plane, links priced by
		// distance.
		{"metro (geometric)", graph.RandomGeometric(120, 0.18, 2, rng), kecss.Solver2ECSS, 2},
		// A datacenter switch fabric: 6-ary fat-tree, 3-edge-connected, and
		// the target is surviving any two simultaneous link failures.
		{"datacenter (fat-tree)", graph.FatTree(6, graph.UnitWeights()), kecss.Solver3ECSSUnweighted, 3},
		// A chain of office meshes with redundant trunks.
		{"offices (clique-chain)", graph.CliqueChain(8, 5, 3, graph.RandomWeights(rng, 40)), kecss.SolverKECSS, 3},
	}

	const trialsPerSite = 4
	var tasks []kecss.Task
	for _, s := range sites {
		for trial := 0; trial < trialsPerSite; trial++ {
			tasks = append(tasks, kecss.Task{
				Graph:  s.g,
				Solver: s.solver,
				K:      s.k,
				Opts:   []kecss.Option{kecss.WithSeed(9)},
			})
		}
	}

	pool := kecss.NewPool(0) // one worker per CPU
	defer pool.Close()
	start := time.Now()
	results := pool.Sweep(tasks)
	elapsed := time.Since(start)

	fmt.Printf("fleet plan: %d sites x %d trials = %d solves on %d workers in %v\n\n",
		len(sites), trialsPerSite, len(tasks), runtime.GOMAXPROCS(0), elapsed.Round(time.Millisecond))

	for i, s := range sites {
		best := -1
		for t := 0; t < trialsPerSite; t++ {
			r := results[i*trialsPerSite+t]
			if r.Err != nil {
				log.Fatalf("site %s trial %d: %v", s.name, t, r.Err)
			}
			if best == -1 || r.Weight < results[i*trialsPerSite+best].Weight {
				best = t
			}
		}
		r := results[i*trialsPerSite+best]
		fmt.Printf("%-24s n=%-4d links %4d -> backbone %4d (cost %5d, best of %d trials, %d rounds, %d-edge-connected: %v)\n",
			s.name, s.g.N(), s.g.M(), len(r.Edges), r.Weight, trialsPerSite, r.Rounds, s.k,
			kecss.VerifyKEdgeConnected(s.g, r.Edges, s.k))
	}
}
