// Datacenter: pick a 3-edge-connected fabric out of an over-provisioned
// unweighted topology (a chain of racks with full intra-rack meshes), so
// that any two simultaneous link failures leave the fabric connected.
// Compares the paper's 3-ECSS algorithm (Theorem 1.3) with the Thurimella
// sparse-certificate baseline and runs a random double-failure drill.
package main

import (
	"fmt"
	"log"
	"math/rand"

	kecss "repro"
	"repro/internal/baselines"
	"repro/internal/graph"
)

func main() {
	// 10 racks of 6 machines: full mesh inside a rack, 3 uplinks between
	// consecutive racks — 3-edge-connected but with lots of slack.
	g := graph.CliqueChain(10, 6, 3, graph.UnitWeights())
	fmt.Printf("topology: %d machines, %d links, diameter≈%d\n", g.N(), g.M(), g.DiameterEstimate())
	fmt.Printf("lower bound for any 3-edge-connected fabric: ⌈3n/2⌉ = %d links\n", (3*g.N()+1)/2)

	res, err := kecss.Solve3ECSSUnweighted(g, kecss.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	cert := baselines.ThurimellaCertificate(g, 3)

	fmt.Printf("\npaper 3-ECSS:      %3d links (%d iterations, %d rounds, O(D·log³n))\n",
		res.Size, res.Iterations, res.Rounds)
	fmt.Printf("sparse certificate: %3d links (2-approx baseline [36], O(k(D+√n)) rounds)\n", len(cert))
	fmt.Printf("full topology:      %3d links\n", g.M())

	fmt.Printf("\nfabric verified 3-edge-connected: %v\n",
		kecss.VerifyKEdgeConnected(g, res.Edges, 3))

	// Double-failure drill: any 2 failed links must leave the fabric up.
	rng := rand.New(rand.NewSource(99))
	sub, _ := g.SubgraphOf(res.Edges)
	drills, outages := 200, 0
	for i := 0; i < drills; i++ {
		a := rng.Intn(sub.M())
		b := rng.Intn(sub.M())
		if a == b {
			continue
		}
		rem, _ := sub.SubgraphWithout(map[int]bool{a: true, b: true})
		if !rem.Connected() {
			outages++
		}
	}
	fmt.Printf("double-failure drill: %d/%d random double failures caused an outage\n", outages, drills)
}
