package kecss

// One benchmark per reproduction experiment (E1–E10, see DESIGN.md §4 and
// EXPERIMENTS.md) plus the ablations (A1–A4) and micro-benchmarks of the
// substrates. The experiment benches run the Quick-scale sweeps so that
// `go test -bench=.` terminates in minutes; `cmd/kecss-bench` (without
// -quick) prints the full tables.

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/cycles"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/primitives"
	"repro/internal/segments"
	"repro/internal/tap"
	"repro/internal/tree"
)

func benchExperiment(b *testing.B, f func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f(experiments.Scale{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Reproduction experiments (one per paper claim) -------------------------

func BenchmarkE1_2ECSSRounds(b *testing.B)    { benchExperiment(b, experiments.E1) }
func BenchmarkE2_2ECSSRatio(b *testing.B)     { benchExperiment(b, experiments.E2) }
func BenchmarkE3_TAPIterations(b *testing.B)  { benchExperiment(b, experiments.E3) }
func BenchmarkE4_KECSSRounds(b *testing.B)    { benchExperiment(b, experiments.E4) }
func BenchmarkE5_KECSSRatio(b *testing.B)     { benchExperiment(b, experiments.E5) }
func BenchmarkE6_AugIterations(b *testing.B)  { benchExperiment(b, experiments.E6) }
func BenchmarkE7_3ECSSRounds(b *testing.B)    { benchExperiment(b, experiments.E7) }
func BenchmarkE8_CycleSpace(b *testing.B)     { benchExperiment(b, experiments.E8) }
func BenchmarkE9_Segments(b *testing.B)       { benchExperiment(b, experiments.E9) }
func BenchmarkE10_Thurimella(b *testing.B)    { benchExperiment(b, experiments.E10) }
func BenchmarkE11_TAPDistRounds(b *testing.B) { benchExperiment(b, experiments.E11) }
func BenchmarkE12_Verification(b *testing.B)  { benchExperiment(b, experiments.E12) }
func BenchmarkE13_FTMST(b *testing.B)         { benchExperiment(b, experiments.E13) }
func BenchmarkE14_Weighted3ECSS(b *testing.B) { benchExperiment(b, experiments.E14) }

// --- Ablations (DESIGN.md §5) ------------------------------------------------

func BenchmarkAblation_VoteThreshold(b *testing.B) {
	benchExperiment(b, experiments.AblationVoteThreshold)
}
func BenchmarkAblation_Rounding(b *testing.B) { benchExperiment(b, experiments.AblationRounding) }
func BenchmarkAblation_PhaseLen(b *testing.B) { benchExperiment(b, experiments.AblationPhaseLength) }

func benchBoruvka(b *testing.B, exec congest.Executor) {
	b.Helper()
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomKConnected(128, 2, 256, rng, graph.RandomWeights(rng, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mst.DistributedBoruvka(g, congest.WithExecutor(exec)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ExecutorSequential(b *testing.B) {
	benchBoruvka(b, congest.SequentialExecutor{})
}
func BenchmarkAblation_ExecutorParallel(b *testing.B) { benchBoruvka(b, congest.ParallelExecutor{}) }

// --- Micro-benchmarks of the substrates --------------------------------------

func BenchmarkMicro_KruskalMST(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomKConnected(1000, 2, 3000, rng, graph.RandomWeights(rng, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mst.Kruskal(g)
	}
}

func BenchmarkMicro_DistributedBFS(b *testing.B) {
	b.ReportAllocs()
	g := graph.Grid(16, 64, graph.UnitWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := primitives.BuildBFSTree(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulator-round micro-benchmarks ----------------------------------------
//
// These isolate the per-round cost of the CONGEST simulator itself, which
// every experiment funnels through. Two workloads at n=1k and n=4k:
//
//   - broadcast: every node broadcasts on every incident edge every round —
//     the saturated regime (2m messages per round), measuring slot delivery
//     and send bookkeeping with zero algorithmic work;
//   - flood: a full BFS-style min-ID flood from scratch each iteration —
//     the sparse-wavefront regime, measuring network construction plus rounds
//     where most nodes send nothing.

// saturatingProgram broadcasts every round and never finishes.
type saturatingProgram struct{}

func (saturatingProgram) Init(ctx *congest.Context) { ctx.Broadcast(congest.Payload{Kind: 1}) }
func (saturatingProgram) Round(ctx *congest.Context, _ []congest.Message) bool {
	ctx.Broadcast(congest.Payload{Kind: 1})
	return false
}

func simBenchGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(int64(n)))
	return graph.RandomKConnected(n, 2, 2*n, rng, graph.UnitWeights())
}

func benchSimulatorBroadcast(b *testing.B, n int, exec congest.Executor) {
	b.Helper()
	b.ReportAllocs()
	g := simBenchGraph(n)
	net := congest.NewNetwork(g, func(int) congest.Program { return saturatingProgram{} },
		congest.WithExecutor(exec))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

func benchSimulatorFlood(b *testing.B, n int, opts ...congest.Option) {
	b.Helper()
	b.ReportAllocs()
	g := simBenchGraph(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := primitives.ElectLeader(g, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_SimulatorRound(b *testing.B) {
	seq := congest.WithExecutor(congest.SequentialExecutor{})
	par := congest.WithExecutor(congest.ParallelExecutor{})
	shard := congest.WithExecutor(congest.ShardedExecutor{})
	b.Run("broadcast/n=1k", func(b *testing.B) { benchSimulatorBroadcast(b, 1000, congest.SequentialExecutor{}) })
	b.Run("broadcast/n=4k", func(b *testing.B) { benchSimulatorBroadcast(b, 4000, congest.SequentialExecutor{}) })
	b.Run("broadcast-parallel/n=4k", func(b *testing.B) { benchSimulatorBroadcast(b, 4000, congest.ParallelExecutor{}) })
	b.Run("broadcast-sharded/n=4k", func(b *testing.B) { benchSimulatorBroadcast(b, 4000, congest.ShardedExecutor{}) })
	b.Run("flood/n=1k", func(b *testing.B) { benchSimulatorFlood(b, 1000, seq) })
	b.Run("flood/n=4k", func(b *testing.B) { benchSimulatorFlood(b, 4000, seq) })
	b.Run("flood-parallel/n=4k", func(b *testing.B) { benchSimulatorFlood(b, 4000, par) })
	b.Run("flood-sharded/n=4k", func(b *testing.B) { benchSimulatorFlood(b, 4000, shard) })
	b.Run("flood-arena/n=1k", func(b *testing.B) {
		benchSimulatorFlood(b, 1000, seq, congest.WithArena(congest.NewArena()))
	})
	b.Run("flood-arena/n=4k", func(b *testing.B) {
		benchSimulatorFlood(b, 4000, seq, congest.WithArena(congest.NewArena()))
	})
}

func BenchmarkMicro_CycleLabels(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomKConnected(512, 2, 512, rng, graph.UnitWeights())
	tr, err := tree.FromBFS(g.BFS(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cycles.ComputeLabels(g, tr, 48, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_SegmentDecomposition(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomKConnected(2048, 2, 2048, rng, graph.RandomWeights(rng, 100))
	ids, _ := mst.Kruskal(g)
	tr := tree.MustFromEdges(g, ids, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := segments.Decompose(g, tr, segments.DefaultTarget(g.N())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_TAPAugment(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomKConnected(256, 2, 768, rng, graph.RandomWeights(rng, 1000))
	ids, _ := mst.Kruskal(g)
	tr := tree.MustFromEdges(g, ids, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tap.Augment(g, tr, tap.Options{Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_Solve2ECSSEndToEnd(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomKConnected(256, 2, 512, rng, graph.RandomWeights(rng, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve2ECSS(g, WithSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
